package mlforest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// ForestConfig configures a bagged random forest.
type ForestConfig struct {
	// Trees is the ensemble size.
	Trees int
	// Tree bounds each member tree.
	Tree TreeConfig
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds how many trees are grown concurrently. 0 (the
	// default) uses runtime.GOMAXPROCS(0); 1 trains serially. Each tree's
	// RNG derives from (Seed, tree index), so the trained forest is
	// byte-identical for any value — Workers is a throughput knob, never
	// part of the model's identity.
	Workers int
}

// DefaultForestConfig mirrors a small production-style regressor: 40 trees,
// depth 12, sqrt-ish feature sampling.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		Trees: 40,
		Tree:  TreeConfig{MaxDepth: 12, MinLeaf: 2, FeatureFrac: 0.6},
		Seed:  1,
	}
}

// Forest is a trained random forest regressor. The ensemble is stored as
// one contiguous structure-of-arrays node arena: trees are concatenated in
// training order (tree t's nodes occupy [roots[t], end of its block)) and
// child links are arena-absolute, so prediction walks dense slices instead
// of per-tree pointer-chased node arrays. Leaves have feature == -1.
type Forest struct {
	feature     []int32
	threshold   []float64
	left, right []int32
	value       []float64
	roots       []int32 // arena index of each tree's root

	// importance holds per-feature total variance reduction summed over
	// trees in tree order (raw, unnormalized).
	importance []float64

	// Level-synchronous mirror of the arena (matrix.go): the same trees
	// relabeled breadth-first into compact 16-byte nodes with leaves as
	// self-looping sentinels, built once by buildBFS after training or
	// decoding and never serialized. Leaf values live in their own slab,
	// read once per (tree, row), so they never dilute the hot node lines.
	bfsNodes []bfsNode
	bfsVal   []float64
	bfsRoots []int32
	bfsDepth []int32 // per-tree max depth = PredictMatrix level count

	nFeat    int
	nSamples int

	// Inference counters, see Stats.
	passes, rowsIn, mismatched atomic.Int64

	// scratch pools PredictMatrix row frontiers.
	scratch sync.Pool
}

// Stats is a snapshot of a forest's inference counters.
type Stats struct {
	// Passes counts inference calls: Predict, PredictBatch and
	// PredictMatrix each add one regardless of batch size, so a caller
	// batching K candidates into one matrix is distinguishable from one
	// looping K single-row predictions.
	Passes int64
	// Rows counts feature rows submitted across all passes.
	Rows int64
	// MismatchedRows counts rows rejected for feature-dimension mismatch.
	// Such rows predict 0 without consulting the ensemble; a nonzero count
	// means a feature-schema bug upstream that would otherwise masquerade
	// as a confident zero-utilization prediction.
	MismatchedRows int64
}

// Stats returns a snapshot of the forest's inference counters. Counters
// are cumulative since training or decoding and safe to read concurrently
// with predictions.
func (f *Forest) Stats() Stats {
	return Stats{
		Passes:         f.passes.Load(),
		Rows:           f.rowsIn.Load(),
		MismatchedRows: f.mismatched.Load(),
	}
}

// Train fits a forest with bootstrap bagging. Each tree sees a bootstrap
// resample of the training set and random feature subsets per split.
//
// Trees grow concurrently on cfg.Workers goroutines; because every tree's
// randomness comes from its own (Seed, index)-derived RNG and trees
// assemble into the arena in index order, the result is byte-identical
// for any worker count.
func Train(samples []Sample, cfg ForestConfig) (*Forest, error) {
	if err := validateSamples(samples); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(samples))
	targets := make([]float64, len(samples))
	for i := range samples {
		rows[i] = samples[i].Features
		targets[i] = samples[i].Target
	}
	return trainOn(newDataset(rows), targets, cfg)
}

// Matrix is a prebuilt columnar training matrix: the feature-major
// transpose plus the per-feature argsorted index columns. Building it is
// the only sorting cost in training, so callers fitting several forests
// on the same rows with different targets — the long-term predictor
// trains a percentile and a max forest per resource on one feature
// matrix — build the Matrix once and TrainOnMatrix per target vector. A
// Matrix is read-only after construction and safe for concurrent
// TrainOnMatrix calls.
type Matrix struct {
	ds *dataset
}

// NewMatrix builds a Matrix from row-major feature vectors. The rows are
// copied into columnar storage; the caller may reuse them afterwards.
func NewMatrix(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("mlforest: empty training matrix")
	}
	nFeat := len(rows[0])
	if nFeat == 0 {
		return nil, fmt.Errorf("mlforest: matrix rows have no features")
	}
	for i, r := range rows {
		if len(r) != nFeat {
			return nil, fmt.Errorf("mlforest: matrix row %d has %d features, want %d", i, len(r), nFeat)
		}
	}
	return &Matrix{ds: newDataset(rows)}, nil
}

// NumRows returns the matrix's row count.
func (m *Matrix) NumRows() int { return m.ds.n }

// NumFeatures returns the matrix's feature dimensionality.
func (m *Matrix) NumFeatures() int { return m.ds.nFeat }

// TrainOnMatrix fits a forest against one target vector over a prebuilt
// Matrix. Train(samples, cfg) is exactly equivalent to NewMatrix over the
// samples' features followed by TrainOnMatrix over their targets — same
// forest, byte for byte.
func TrainOnMatrix(m *Matrix, targets []float64, cfg ForestConfig) (*Forest, error) {
	if len(targets) != m.ds.n {
		return nil, fmt.Errorf("mlforest: %d targets for %d-row matrix", len(targets), m.ds.n)
	}
	return trainOn(m.ds, targets, cfg)
}

// trainOn is the shared training core behind Train and TrainOnMatrix.
func trainOn(ds *dataset, targets []float64, cfg ForestConfig) (*Forest, error) {
	if cfg.Trees < 1 {
		return nil, fmt.Errorf("mlforest: ForestConfig.Trees %d < 1", cfg.Trees)
	}
	if cfg.Tree.MinLeaf < 1 {
		cfg.Tree.MinLeaf = 1
	}
	if cfg.Tree.FeatureFrac <= 0 || cfg.Tree.FeatureFrac > 1 {
		cfg.Tree.FeatureFrac = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trees {
		workers = cfg.Trees
	}

	trees := make([]grownTree, cfg.Trees)
	if workers == 1 {
		b := newTreeBuilder(ds, targets, cfg.Tree)
		for t := range trees {
			trees[t] = b.grow(treeSeed(cfg.Seed, t))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := newTreeBuilder(ds, targets, cfg.Tree)
				for {
					t := int(next.Add(1)) - 1
					if t >= len(trees) {
						return
					}
					trees[t] = b.grow(treeSeed(cfg.Seed, t))
				}
			}()
		}
		wg.Wait()
	}
	return flatten(trees, ds.nFeat, ds.n), nil
}

// flatten concatenates the grown trees into the arena in tree order,
// rebasing child links to arena-absolute indexes and folding per-tree
// importances in the same order (float accumulation order is fixed, so
// the arena is byte-identical however the trees were grown).
func flatten(trees []grownTree, nFeat, nSamples int) *Forest {
	var total int
	for i := range trees {
		total += len(trees[i].feature)
	}
	f := &Forest{
		feature:    make([]int32, 0, total),
		threshold:  make([]float64, 0, total),
		left:       make([]int32, 0, total),
		right:      make([]int32, 0, total),
		value:      make([]float64, 0, total),
		roots:      make([]int32, 0, len(trees)),
		importance: make([]float64, nFeat),
		nFeat:      nFeat,
		nSamples:   nSamples,
	}
	for i := range trees {
		t := &trees[i]
		base := int32(len(f.feature))
		f.roots = append(f.roots, base)
		f.feature = append(f.feature, t.feature...)
		f.threshold = append(f.threshold, t.threshold...)
		f.value = append(f.value, t.value...)
		for _, c := range t.left {
			f.left = append(f.left, c+base)
		}
		for _, c := range t.right {
			f.right = append(f.right, c+base)
		}
		for k, v := range t.importance {
			f.importance[k] += v
		}
	}
	f.buildBFS()
	return f
}

// walk descends from arena node i to a leaf for one feature row and
// returns its value. It is the single walk loop Predict and PredictBatch
// share, so the two paths can never diverge.
func (f *Forest) walk(i int32, row []float64) float64 {
	for f.feature[i] >= 0 {
		if row[f.feature[i]] <= f.threshold[i] {
			i = f.left[i]
		} else {
			i = f.right[i]
		}
	}
	return f.value[i]
}

// Predict returns the ensemble mean prediction. A feature vector whose
// length differs from the trained dimensionality predicts 0 and counts in
// Stats().MismatchedRows.
func (f *Forest) Predict(features []float64) float64 {
	f.passes.Add(1)
	f.rowsIn.Add(1)
	if len(features) != f.nFeat {
		f.mismatched.Add(1)
		return 0
	}
	var sum float64
	for _, root := range f.roots {
		sum += f.walk(root, features)
	}
	return sum / float64(len(f.roots))
}

// PredictBatch predicts every feature row in one ensemble pass, writing
// into out when it has matching length (allocating otherwise) and returning
// the slice used. The result is bit-identical to calling Predict per row —
// each row's per-tree contributions accumulate in the same tree order and
// the final division is the same operation — but the tree loop is the outer
// loop, so one tree's span of the node arena stays hot in cache across the
// whole batch and the per-tree dispatch overhead is amortized over all
// rows. Rows whose length differs from the trained feature count predict
// 0, as in Predict, and count in Stats().MismatchedRows.
func (f *Forest) PredictBatch(rows [][]float64, out []float64) []float64 {
	if len(out) != len(rows) {
		out = make([]float64, len(rows))
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	f.passes.Add(1)
	f.rowsIn.Add(int64(len(rows)))
	valid := true
	for _, r := range rows {
		if len(r) != f.nFeat {
			valid = false
			break
		}
	}
	if !valid {
		// Rare slow path: keep the hot loop free of per-row length checks.
		nt := float64(len(f.roots))
		for i, r := range rows {
			if len(r) != f.nFeat {
				f.mismatched.Add(1)
				continue // out[i] stays 0
			}
			var sum float64
			for _, root := range f.roots {
				sum += f.walk(root, r)
			}
			out[i] = sum / nt
		}
		return out
	}
	for _, root := range f.roots {
		for i, r := range rows {
			out[i] += f.walk(root, r)
		}
	}
	n := float64(len(f.roots))
	for i := range out {
		out[i] /= n
	}
	return out
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.roots) }

// NumFeatures returns the feature dimensionality the forest was trained on.
func (f *Forest) NumFeatures() int { return f.nFeat }

// NumNodes returns the total node count of the arena across all trees.
func (f *Forest) NumNodes() int { return len(f.feature) }

// treeEnd returns one past the last arena index of tree t's node block.
func (f *Forest) treeEnd(t int) int32 {
	if t+1 < len(f.roots) {
		return f.roots[t+1]
	}
	return int32(len(f.feature))
}

// TreeNodes returns the node count of tree t.
func (f *Forest) TreeNodes(t int) int { return int(f.treeEnd(t) - f.roots[t]) }

// TreeDepth returns the maximum depth of tree t (a single leaf has
// depth 0).
func (f *Forest) TreeDepth(t int) int {
	var walk func(i int32) int
	walk = func(i int32) int {
		if f.feature[i] < 0 {
			return 0
		}
		l, r := walk(f.left[i]), walk(f.right[i])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(f.roots[t])
}

// FeatureImportance returns per-feature total variance reduction, normalized
// to sum to 1 (all zeros when the forest never split).
func (f *Forest) FeatureImportance() []float64 {
	imp := append([]float64(nil), f.importance...)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Per-element sizes of the arena slices, for MemoryBytes.
const (
	arenaIndexBytes = int(unsafe.Sizeof(int32(0)))
	arenaFloatBytes = int(unsafe.Sizeof(float64(0)))
	// arenaNodeBytes is one node's share of the SoA arena: feature,
	// threshold, left, right, value.
	arenaNodeBytes = 3*arenaIndexBytes + 2*arenaFloatBytes
	// bfsNodeBytes is one node's share of the level-synchronous mirror:
	// the 16-byte packed node plus its slot in the leaf-value slab.
	bfsNodeBytes = int(unsafe.Sizeof(bfsNode{})) + arenaFloatBytes
)

// MemoryBytes reports the resident size of the model — the arena's real
// footprint (every node's share of the SoA slices plus the per-tree roots
// and per-feature importances) and the breadth-first mirror PredictMatrix
// walks, used by the §4.5 overhead experiment.
func (f *Forest) MemoryBytes() int {
	return len(f.feature)*arenaNodeBytes +
		len(f.bfsNodes)*bfsNodeBytes +
		len(f.roots)*arenaIndexBytes +
		len(f.bfsRoots)*2*arenaIndexBytes + // bfsRoots + bfsDepth
		len(f.importance)*arenaFloatBytes
}

// MSE returns the mean squared error of the forest on a sample set.
func (f *Forest) MSE(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		d := f.Predict(s.Features) - s.Target
		sum += d * d
	}
	return sum / float64(len(samples))
}

// forestWire mirrors Forest with exported fields for gob.
type forestWire struct {
	Feature     []int32
	Threshold   []float64
	Left, Right []int32
	Value       []float64
	Roots       []int32
	Importance  []float64
	NFeat       int
	NSamples    int
}

// GobEncode serializes the arena. Encoding is deterministic: two forests
// trained from the same samples, seed and configuration produce identical
// bytes regardless of Workers, which is how the determinism tests compare
// whole models.
func (f *Forest) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(forestWire{
		Feature:    f.feature,
		Threshold:  f.threshold,
		Left:       f.left,
		Right:      f.right,
		Value:      f.value,
		Roots:      f.roots,
		Importance: f.importance,
		NFeat:      f.nFeat,
		NSamples:   f.nSamples,
	})
	return buf.Bytes(), err
}

// GobDecode restores a forest serialized by GobEncode. The arena is
// validated structurally before installation — a truncated or corrupt
// payload fails here with an error instead of panicking inside a later
// Predict walk.
func (f *Forest) GobDecode(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	n := len(w.Feature)
	if len(w.Threshold) != n || len(w.Left) != n || len(w.Right) != n || len(w.Value) != n {
		return fmt.Errorf("mlforest: decoded arena slices have mismatched lengths")
	}
	if n == 0 || len(w.Roots) == 0 {
		return fmt.Errorf("mlforest: decoded forest is empty")
	}
	if len(w.Importance) != w.NFeat {
		return fmt.Errorf("mlforest: decoded importance length %d, want %d features", len(w.Importance), w.NFeat)
	}
	for i := 0; i < n; i++ {
		if w.Feature[i] >= int32(w.NFeat) {
			return fmt.Errorf("mlforest: decoded node %d splits on feature %d of %d", i, w.Feature[i], w.NFeat)
		}
		// Children must point strictly forward — every trained arena
		// satisfies this because nodes append in pre-order — which both
		// bounds the links and rules out cycles, so a corrupt payload can
		// never make a Predict walk spin forever.
		if w.Feature[i] >= 0 && (w.Left[i] <= int32(i) || w.Left[i] >= int32(n) || w.Right[i] <= int32(i) || w.Right[i] >= int32(n)) {
			return fmt.Errorf("mlforest: decoded node %d has child outside the forward arena range", i)
		}
	}
	for _, r := range w.Roots {
		if r < 0 || r >= int32(n) {
			return fmt.Errorf("mlforest: decoded root %d outside arena of %d nodes", r, n)
		}
	}
	// Trees occupy ascending contiguous blocks [roots[t], roots[t+1]) and a
	// node's children never leave its tree's block — properties every
	// trained arena has and the breadth-first relabeling in buildBFS relies
	// on, so a payload violating them must fail here, not panic there.
	if w.Roots[0] != 0 {
		return fmt.Errorf("mlforest: decoded first root %d, want 0", w.Roots[0])
	}
	for t := 1; t < len(w.Roots); t++ {
		if w.Roots[t] <= w.Roots[t-1] {
			return fmt.Errorf("mlforest: decoded roots not strictly ascending at tree %d", t)
		}
	}
	for t := range w.Roots {
		end := int32(n)
		if t+1 < len(w.Roots) {
			end = w.Roots[t+1]
		}
		for i := w.Roots[t]; i < end; i++ {
			if w.Feature[i] >= 0 && (w.Left[i] >= end || w.Right[i] >= end) {
				return fmt.Errorf("mlforest: decoded node %d has child outside its tree block", i)
			}
		}
	}
	f.feature = w.Feature
	f.threshold = w.Threshold
	f.left = w.Left
	f.right = w.Right
	f.value = w.Value
	f.roots = w.Roots
	f.importance = w.Importance
	f.nFeat = w.NFeat
	f.nSamples = w.NSamples
	f.buildBFS()
	return nil
}
