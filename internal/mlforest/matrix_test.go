package mlforest

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// gobBytes serializes predictions for byte-level comparison: the
// equivalence wall requires the two inference paths to agree bit for bit,
// not merely within a tolerance.
func gobBytes(t *testing.T, v []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPredictMatrixMatchesPredict is the mlforest half of the equivalence
// wall: level-synchronous inference must be byte-identical to the per-row
// pointer walk at every required batch size.
func TestPredictMatrixMatchesPredict(t *testing.T) {
	f, err := Train(TraceLikeSamples(600, 31), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := TraceLikeSamples(512, 32)
	for _, n := range []int{1, 7, 64, 4096} {
		m := NewRowMatrix(n, f.NumFeatures())
		want := make([]float64, n)
		for r := 0; r < n; r++ {
			feats := pool[r%len(pool)].Features
			m.SetRow(r, feats)
			want[r] = f.Predict(feats)
		}
		got := f.PredictMatrix(m, nil)
		if !bytes.Equal(gobBytes(t, got), gobBytes(t, want)) {
			t.Fatalf("batch %d: PredictMatrix diverges from Predict", n)
		}
		// Reusing the output buffer must overwrite, not accumulate.
		again := f.PredictMatrix(m, got)
		if !bytes.Equal(gobBytes(t, again), gobBytes(t, want)) {
			t.Fatalf("batch %d: reused output buffer diverges", n)
		}
	}
}

// TestPredictMatrixSingleLeafTree covers the depth-0 edge: a tree that
// never split runs zero level steps and must still land on its leaf.
func TestPredictMatrixSingleLeafTree(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Target: 5},
		{Features: []float64{1}, Target: 5},
	}
	f, err := Train(samples, ForestConfig{Trees: 2, Tree: TreeConfig{MinLeaf: 1, FeatureFrac: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := NewRowMatrix(3, 1)
	for r := 0; r < 3; r++ {
		m.SetRow(r, []float64{float64(r)})
	}
	out := f.PredictMatrix(m, nil)
	for r, got := range out {
		if got != 5 {
			t.Errorf("row %d: single-leaf forest predicted %v, want 5", r, got)
		}
	}
}

// TestMismatchedRowsCounted pins the satellite fix: dimension-mismatched
// inputs still predict 0, but no longer silently — every such row counts
// in Stats().MismatchedRows across all three inference paths.
func TestMismatchedRowsCounted(t *testing.T) {
	f, err := Train(linearData(60, 11), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Passes != 0 || s.Rows != 0 || s.MismatchedRows != 0 {
		t.Fatalf("fresh forest has nonzero stats %+v", s)
	}

	if got := f.Predict([]float64{1}); got != 0 {
		t.Errorf("wrong-dimension Predict = %v, want 0", got)
	}
	good := []float64{0.5, 0.5}
	f.Predict(good)
	batch := f.PredictBatch([][]float64{good, {1}, good, {1, 2, 3}}, nil)
	if batch[1] != 0 || batch[3] != 0 {
		t.Errorf("mismatched batch rows predicted %v, %v, want 0", batch[1], batch[3])
	}
	if want := f.Predict(good); batch[0] != want || batch[2] != want {
		t.Errorf("valid rows in mixed batch predicted %v, %v, want %v", batch[0], batch[2], want)
	}
	m := NewRowMatrix(5, 3) // wrong dimensionality: whole matrix rejected
	out := f.PredictMatrix(m, nil)
	for r, v := range out {
		if v != 0 {
			t.Errorf("mismatched matrix row %d predicted %v, want 0", r, v)
		}
	}

	// Predict(bad)=1 pass/1 row/1 mismatch, Predict(good)+inner Predict
	// call above = 2 passes/2 rows, batch = 1 pass/4 rows/2 mismatches,
	// matrix = 1 pass/5 rows/5 mismatches.
	s := f.Stats()
	if s.MismatchedRows != 1+2+5 {
		t.Errorf("MismatchedRows = %d, want 8", s.MismatchedRows)
	}
	if s.Passes != 5 {
		t.Errorf("Passes = %d, want 5", s.Passes)
	}
	if s.Rows != 1+1+1+4+5 {
		t.Errorf("Rows = %d, want 12", s.Rows)
	}
}

// randomArena hand-builds a structurally valid DFS arena (no training):
// random tree shapes, thresholds and leaf values, exercising layouts the
// trainer would rarely produce.
func randomArena(rng *rand.Rand, trees, nFeat, maxDepth int) *Forest {
	f := &Forest{nFeat: nFeat, importance: make([]float64, nFeat)}
	var build func(depth int)
	build = func(depth int) {
		i := int32(len(f.feature))
		if depth >= maxDepth || rng.Float64() < 0.3 {
			f.feature = append(f.feature, -1)
			f.threshold = append(f.threshold, 0)
			f.left = append(f.left, 0)
			f.right = append(f.right, 0)
			f.value = append(f.value, rng.NormFloat64())
			return
		}
		f.feature = append(f.feature, int32(rng.Intn(nFeat)))
		f.threshold = append(f.threshold, rng.NormFloat64())
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		f.value = append(f.value, 0)
		f.left[i] = int32(len(f.feature))
		build(depth + 1)
		f.right[i] = int32(len(f.feature))
		build(depth + 1)
	}
	for t := 0; t < trees; t++ {
		f.roots = append(f.roots, int32(len(f.feature)))
		build(0)
	}
	f.buildBFS()
	return f
}

// FuzzPredictMatrixEquivalence fuzzes random arenas and random inputs:
// whatever the tree shapes, both layouts must walk every row to the same
// leaf and produce bit-identical ensemble means.
func FuzzPredictMatrixEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(4), uint8(9))
	f.Add(int64(42), uint8(1), uint8(1), uint8(0), uint8(1))
	f.Add(int64(7), uint8(8), uint8(4), uint8(6), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, trees, nFeat, maxDepth, rows uint8) {
		nt := int(trees)%8 + 1
		nf := int(nFeat)%6 + 1
		md := int(maxDepth) % 8
		n := int(rows)%70 + 1
		rng := rand.New(rand.NewSource(seed))
		forest := randomArena(rng, nt, nf, md)

		m := NewRowMatrix(n, nf)
		want := make([]float64, n)
		row := make([]float64, nf)
		for r := 0; r < n; r++ {
			for c := range row {
				row[c] = rng.NormFloat64()
			}
			m.SetRow(r, row)
			want[r] = forest.Predict(row)
		}
		got := forest.PredictMatrix(m, nil)
		for r := range want {
			if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
				t.Fatalf("row %d: matrix %v != walk %v (trees=%d feat=%d depth=%d)",
					r, got[r], want[r], nt, nf, md)
			}
		}
	})
}
