package mlforest

import (
	"fmt"
	"math"
)

// This file implements the level-synchronous inference path
// (docs/DESIGN.md §14). Alongside the depth-first node arena that Predict
// and PredictBatch pointer-walk row by row, every trained Forest carries a
// second, breadth-first layout of the same ensemble: per-tree slabs in
// which each level's nodes are contiguous and leaves are self-looping
// sentinels (feature 0, threshold +Inf, both children pointing at the
// node itself). PredictMatrix advances an entire batch of rows through a
// tree one level per step — one tight compare-and-advance loop across all
// rows, no per-row leaf checks, no data-dependent control flow beyond a
// single compare the compiler turns into a conditional move — so the
// serial pointer-chase latency of the row-by-row walk is replaced by
// independent per-row steps the CPU can overlap.
//
// The accumulation order is exactly Predict's: trees evaluate in training
// order, each row's running sum adds tree t's leaf before tree t+1's, and
// the final division by the ensemble size is the same single operation.
// Predict, PredictBatch and PredictMatrix are therefore bit-identical —
// pinned by the equivalence wall in matrix_test.go and the fuzzed
// random-arena walk comparison.

// RowMatrix is a feature-major batch of prediction inputs: column f holds
// every row's value of feature f contiguously (data[f*rows+r]). The
// batched prediction paths carve it from one flat buffer — Reset reuses
// the backing array across batches — so a serving-rate stream of
// fleet-sized what-if batches allocates nothing in steady state.
//
// A RowMatrix is not safe for concurrent mutation; fill it, then hand it
// to PredictMatrix (which only reads it).
type RowMatrix struct {
	data  []float64
	rows  int
	nFeat int
}

// NewRowMatrix returns a matrix sized for rows×nFeat values. Cells start
// at zero; callers normally overwrite every row via SetRow or Set.
func NewRowMatrix(rows, nFeat int) *RowMatrix {
	m := &RowMatrix{}
	m.Reset(rows, nFeat)
	return m
}

// NewRowMatrixFrom builds a matrix from row-major feature vectors, the
// transposing convenience the tests and one-shot callers use.
func NewRowMatrixFrom(rows [][]float64) (*RowMatrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("mlforest: empty row matrix")
	}
	nFeat := len(rows[0])
	m := NewRowMatrix(len(rows), nFeat)
	for r, row := range rows {
		if len(row) != nFeat {
			return nil, fmt.Errorf("mlforest: row %d has %d features, want %d", r, len(row), nFeat)
		}
		m.SetRow(r, row)
	}
	return m, nil
}

// Reset resizes the matrix for a new batch, reusing the backing buffer
// when it is large enough. Existing cell values are unspecified after
// Reset; callers must fill every row they submit.
func (m *RowMatrix) Reset(rows, nFeat int) {
	need := rows * nFeat
	if cap(m.data) < need {
		m.data = make([]float64, need)
	}
	m.data = m.data[:need]
	m.rows, m.nFeat = rows, nFeat
}

// Rows returns the batch size.
func (m *RowMatrix) Rows() int { return m.rows }

// NumFeatures returns the feature dimensionality.
func (m *RowMatrix) NumFeatures() int { return m.nFeat }

// Set stores one cell.
func (m *RowMatrix) Set(r, f int, v float64) { m.data[f*m.rows+r] = v }

// At reads one cell.
func (m *RowMatrix) At(r, f int) float64 { return m.data[f*m.rows+r] }

// SetRow scatters one row-major feature vector into the matrix's columns.
// feats must have exactly NumFeatures values.
func (m *RowMatrix) SetRow(r int, feats []float64) {
	if len(feats) != m.nFeat {
		panic(fmt.Sprintf("mlforest: SetRow with %d features, want %d", len(feats), m.nFeat))
	}
	for f, v := range feats {
		m.data[f*m.rows+r] = v
	}
}

// bfsNode is one node of the breadth-first mirror, packed to 16 bytes so
// four nodes share a cache line — the pointer-walk arena spreads a visit
// over the feature/threshold/left/right slabs (four lines when the
// ensemble outgrows cache), which is exactly the footprint the mirror
// exists to shrink. Only the left child index is stored: BFS relabeling
// appends siblings adjacently, so an internal node's right child is
// always lo+1. A leaf stores lo = its own index with threshold +Inf; the
// compare can then never select lo+1, so the self-loop needs no second
// link either.
type bfsNode struct {
	thr  float64
	lo   int32
	feat int32
}

// buildBFS derives the breadth-first mirror from the depth-first arena.
// It runs once per trained or decoded forest (flatten, GobDecode); the
// mirror is a pure function of the arena, so it is never serialized.
//
// Within the arena, tree t's nodes occupy the contiguous block
// [roots[t], treeEnd(t)) in depth-first pre-order; the BFS relabeling
// keeps the same per-tree blocks but orders each block level by level,
// which is what makes one PredictMatrix level step touch a contiguous
// node range. Leaves become self-looping sentinels: feature 0 (a valid
// column, so the gather never indexes out of bounds), threshold +Inf (the
// compare always sends the row to lo) and lo the node itself — a row that
// reaches a leaf early simply re-lands on it every remaining level, so
// the inner loop needs no is-leaf branch at all.
func (f *Forest) buildBFS() {
	n := len(f.feature)
	f.bfsNodes = make([]bfsNode, n)
	f.bfsVal = make([]float64, n)
	f.bfsRoots = make([]int32, len(f.roots))
	f.bfsDepth = make([]int32, len(f.roots))

	var order []int32 // per-tree scratch: arena indices in BFS order
	var depth []int32 // per-tree scratch: BFS level of each ordered node
	var inv []int32   // per-tree scratch: arena index - base -> BFS slab index
	for t, root := range f.roots {
		base := f.roots[t] // BFS block shares the tree's arena offsets
		end := f.treeEnd(t)
		size := int(end - base)
		order = append(order[:0], root)
		depth = append(depth[:0], 0)
		for qi := 0; qi < len(order); qi++ {
			i := order[qi]
			if f.feature[i] >= 0 {
				order = append(order, f.left[i], f.right[i])
				depth = append(depth, depth[qi]+1, depth[qi]+1)
			}
		}
		if cap(inv) < size {
			inv = make([]int32, size)
		}
		inv = inv[:size]
		for bi, ai := range order {
			inv[ai-base] = base + int32(bi)
		}
		f.bfsRoots[t] = base
		for bi, ai := range order {
			j := base + int32(bi)
			if f.feature[ai] >= 0 {
				// Children were appended to the BFS order back to back, so
				// inv[right] == inv[left]+1 by construction and only the
				// left link is stored.
				f.bfsNodes[j] = bfsNode{
					thr:  f.threshold[ai],
					lo:   inv[f.left[ai]-base],
					feat: f.feature[ai],
				}
			} else {
				f.bfsNodes[j] = bfsNode{thr: math.Inf(1), lo: j, feat: 0}
				f.bfsVal[j] = f.value[ai]
			}
			if d := depth[bi]; d > f.bfsDepth[t] {
				f.bfsDepth[t] = d
			}
		}
	}
}

// PredictMatrix predicts every row of the batch in one level-synchronous
// ensemble pass, writing into out when it has matching length (allocating
// otherwise) and returning the slice used. Results are bit-identical to
// calling Predict per row: each row accumulates its per-tree leaf values
// in training order and the final division is the same operation — only
// the walk schedule differs. A matrix whose feature dimensionality does
// not match the trained forest predicts 0 for every row, as in Predict,
// and counts the rows in Stats().MismatchedRows.
func (f *Forest) PredictMatrix(m *RowMatrix, out []float64) []float64 {
	n := m.rows
	if len(out) != n {
		out = make([]float64, n)
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	f.passes.Add(1)
	f.rowsIn.Add(int64(n))
	if m.nFeat != f.nFeat {
		f.mismatched.Add(int64(n))
		return out
	}
	if n == 0 {
		return out
	}

	box, idx := f.frontier(n)
	data := m.data
	nodes, val := f.bfsNodes, f.bfsVal
	for t, root := range f.bfsRoots {
		dep := f.bfsDepth[t]
		if dep == 0 {
			// Single-leaf tree: every row lands on the root.
			v := val[root]
			for r := range out {
				out[r] += v
			}
			continue
		}
		// Level 0 reads one node for the whole batch, so its feature column
		// is a sequential scan and the node loads hoist out of the loop.
		rn := nodes[root]
		lo0, hi0 := rn.lo, rn.lo+1
		col := data[int(rn.feat)*n : int(rn.feat)*n+n]
		if dep == 1 {
			// Both children are leaves: fold the accumulate in too.
			vlo, vhi := val[lo0], val[hi0]
			for r, v := range col {
				w := vlo
				if v > rn.thr {
					w = vhi
				}
				out[r] += w
			}
			continue
		}
		for r, v := range col {
			k := lo0
			if v > rn.thr {
				k = hi0
			}
			idx[r] = k
		}
		for d := int32(1); d < dep-1; d++ {
			for r, i := range idx {
				nd := nodes[i]
				lo := nd.lo
				hi := lo + 1
				if data[int(nd.feat)*n+r] > nd.thr {
					lo = hi
				}
				idx[r] = lo
			}
		}
		// Final level: the advanced-to node is always a leaf (real or
		// sentinel), so accumulate its value directly instead of writing
		// the frontier and re-reading it.
		for r, i := range idx {
			nd := nodes[i]
			lo := nd.lo
			hi := lo + 1
			if data[int(nd.feat)*n+r] > nd.thr {
				lo = hi
			}
			out[r] += val[lo]
		}
	}
	nt := float64(len(f.bfsRoots))
	for r := range out {
		out[r] /= nt
	}
	f.releaseFrontier(box)
	return out
}

// frontier leases an n-row active-frontier scratch from the forest's pool.
// The *[]int32 box travels with the slice so a steady-state lease/release
// cycle allocates nothing.
func (f *Forest) frontier(n int) (*[]int32, []int32) {
	box, _ := f.scratch.Get().(*[]int32)
	if box == nil {
		box = new([]int32)
	}
	s := *box
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	*box = s
	return box, s
}

// releaseFrontier returns a frontier to the pool.
func (f *Forest) releaseFrontier(box *[]int32) {
	f.scratch.Put(box)
}
