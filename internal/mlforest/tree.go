// Package mlforest implements CART regression trees and bagged random
// forests from scratch on the standard library.
//
// The paper's long-term utilization predictor is a random forest regressor
// (§3.3): "Random forest is well-suited for predicting VM utilization due
// to its effectiveness with categorical variables ... we choose random
// forest because it tends to be less sensitive to overfitting." This
// package is that model family; internal/predict assembles the feature
// vectors and bucket quantization around it.
//
// Training is columnar and pre-sorted (docs/DESIGN.md §8): the training
// set is transposed into a feature-major matrix with per-feature argsorted
// index columns once per Train call, each tree derives its bootstrap's
// sorted columns in O(n·features) without sorting, and nodes are grown by
// linear sweeps plus stable in-place partitioning. Trees grow in parallel
// on a worker pool with per-tree RNGs, and the trained ensemble is
// flattened into one contiguous node arena (see Forest).
package mlforest

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one training example: a dense feature vector and a target.
// Categorical features are encoded ordinally; CART threshold splits handle
// them adequately for the small cardinalities used here.
type Sample struct {
	Features []float64
	Target   float64
}

// TreeConfig bounds the growth of a single regression tree.
type TreeConfig struct {
	// MaxDepth limits tree depth; <=0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (>=1).
	MinLeaf int
	// FeatureFrac is the fraction of features considered at each split
	// in (0,1]; the classic random-forest decorrelation knob.
	FeatureFrac float64
}

// grownTree is one trained tree before arena flattening: SoA node storage
// (leaves have feature == -1; child indexes are tree-local) plus the
// per-feature variance reduction it accumulated.
type grownTree struct {
	feature     []int32
	threshold   []float64
	left, right []int32
	value       []float64
	importance  []float64
}

// treeBuilder grows CART trees over one shared dataset. A builder belongs
// to a single worker goroutine and reuses all scratch across the trees it
// grows; everything a tree computes is derived from the tree's own RNG
// and the read-only dataset, so the result is independent of which worker
// grows which tree.
type treeBuilder struct {
	ds *dataset
	// targets[r] is dataset row r's regression target (held outside the
	// dataset so one matrix serves forests with different targets).
	targets []float64
	cfg     TreeConfig
	rng     *rand.Rand

	// Per-tree bootstrap state, indexed by position p in [0, n):
	boot   []int32   // position -> sampled dataset row
	target []float64 // position -> target of that row (cached)

	// vals[f][p] caches the feature value at a position, feature-major,
	// and sorted[f] holds the positions ordered by that value. Node
	// [lo, hi) owns the same segment of every sorted column.
	vals       [][]float64
	sorted     [][]int32
	valsFlat   []float64
	sortedFlat []int32

	counts   []int32 // counting-sort offsets (len n+1)
	posByRow []int32 // positions grouped by dataset row
	goesLeft []bool  // split membership, indexed by position
	part     []int32 // stable-partition scratch (cap n, never grows)
	featOrd  []int   // partial Fisher–Yates scratch (len nFeat)

	// Node output, reset per tree and copied out exact-size when done.
	feature     []int32
	threshold   []float64
	left, right []int32
	value       []float64
	importance  []float64
}

func newTreeBuilder(ds *dataset, targets []float64, cfg TreeConfig) *treeBuilder {
	n, nFeat := ds.n, ds.nFeat
	b := &treeBuilder{
		ds:         ds,
		targets:    targets,
		cfg:        cfg,
		boot:       make([]int32, n),
		target:     make([]float64, n),
		valsFlat:   make([]float64, n*nFeat),
		sortedFlat: make([]int32, n*nFeat),
		vals:       make([][]float64, nFeat),
		sorted:     make([][]int32, nFeat),
		counts:     make([]int32, n+1),
		posByRow:   make([]int32, n),
		goesLeft:   make([]bool, n),
		part:       make([]int32, 0, n),
		featOrd:    make([]int, nFeat),
	}
	for f := 0; f < nFeat; f++ {
		b.vals[f] = b.valsFlat[f*n : (f+1)*n : (f+1)*n]
		b.sorted[f] = b.sortedFlat[f*n : (f+1)*n : (f+1)*n]
	}
	return b
}

// grow trains one tree from its own deterministic RNG: draw the bootstrap,
// derive the sorted bootstrap columns from the dataset's global argsort,
// and recurse. The returned tree owns its storage (the builder's scratch
// is reused for the next tree).
func (b *treeBuilder) grow(seed int64) grownTree {
	b.rng = rand.New(rand.NewSource(seed))
	n := b.ds.n

	// Bootstrap resample (with replacement), caching targets per position.
	for p := 0; p < n; p++ {
		r := int32(b.rng.Intn(n))
		b.boot[p] = r
		b.target[p] = b.targets[r]
	}

	// Counting pass: group positions by dataset row. After the fill,
	// row r's positions are posByRow[counts[r-1]:counts[r]] (counts[-1]=0),
	// in ascending position order.
	cnt := b.counts
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range b.boot {
		cnt[r+1]++
	}
	for r := 1; r <= n; r++ {
		cnt[r] += cnt[r-1]
	}
	fill := cnt[:n] // fill[r] advances from row r's start to its end
	for p := 0; p < n; p++ {
		r := b.boot[p]
		b.posByRow[fill[r]] = int32(p)
		fill[r]++
	}

	// Derive each feature's sorted bootstrap column by walking the global
	// argsort and emitting every sampled copy of each row — O(n) per
	// feature, no comparison sort. vals caches values position-major so
	// the split sweeps touch one dense array.
	for f := 0; f < b.ds.nFeat; f++ {
		col := b.ds.cols[f]
		out := b.sorted[f]
		k := 0
		for _, r := range b.ds.sortedRows[f] {
			lo := int32(0)
			if r > 0 {
				lo = cnt[r-1]
			}
			for _, p := range b.posByRow[lo:cnt[r]] {
				out[k] = p
				k++
			}
		}
		vals := b.vals[f]
		for p := 0; p < n; p++ {
			vals[p] = col[b.boot[p]]
		}
	}

	// Feature-order scratch starts as the identity permutation each tree
	// (it must not carry state between trees: with parallel workers the
	// previous tree a builder grew depends on scheduling).
	for f := range b.featOrd {
		b.featOrd[f] = f
	}

	b.feature = b.feature[:0]
	b.threshold = b.threshold[:0]
	b.left = b.left[:0]
	b.right = b.right[:0]
	b.value = b.value[:0]
	if b.importance == nil {
		b.importance = make([]float64, b.ds.nFeat)
	}
	for f := range b.importance {
		b.importance[f] = 0
	}

	b.build(0, n, 0)

	t := grownTree{
		feature:    append([]int32(nil), b.feature...),
		threshold:  append([]float64(nil), b.threshold...),
		left:       append([]int32(nil), b.left...),
		right:      append([]int32(nil), b.right...),
		value:      append([]float64(nil), b.value...),
		importance: append([]float64(nil), b.importance...),
	}
	return t
}

// build grows the subtree owning segment [lo, hi) of every sorted column
// and returns its tree-local node index. Nodes append in pre-order.
func (b *treeBuilder) build(lo, hi, depth int) int32 {
	m := hi - lo
	var sum, sq float64
	for _, p := range b.sorted[0][lo:hi] {
		t := b.target[p]
		sum += t
		sq += t * t
	}
	fm := float64(m)
	mean := sum / fm
	variance := sq/fm - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise
	}

	me := int32(len(b.feature))
	b.feature = append(b.feature, -1)
	b.threshold = append(b.threshold, 0)
	b.left = append(b.left, 0)
	b.right = append(b.right, 0)
	b.value = append(b.value, mean)

	if m < 2*b.cfg.MinLeaf || variance <= 1e-12 {
		return me
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return me
	}

	feat, nl, thr, gain := b.bestSplit(lo, hi, sum, sq, variance)
	if feat < 0 {
		return me
	}
	b.importance[feat] += gain * fm

	// Mark membership straight off the chosen feature's sorted segment
	// (its first nl positions are the left child by construction), then
	// stably partition every other column so both children again own
	// contiguous, sorted segments.
	col := b.sorted[feat]
	for _, p := range col[lo : lo+nl] {
		b.goesLeft[p] = true
	}
	for _, p := range col[lo+nl : hi] {
		b.goesLeft[p] = false
	}
	for f := 0; f < b.ds.nFeat; f++ {
		if f != feat {
			b.partition(b.sorted[f], lo, hi)
		}
	}

	l := b.build(lo, lo+nl, depth+1)
	r := b.build(lo+nl, hi, depth+1)
	b.feature[me] = int32(feat)
	b.threshold[me] = thr
	b.left[me] = l
	b.right[me] = r
	return me
}

// bestSplit sweeps a random subset of features' sorted segments for the
// threshold with the largest variance reduction. It returns feature -1
// when no valid split improves on the parent; otherwise nl is the left
// child's size within the segment and thr the split threshold.
//
// The threshold is the *left* boundary value itself (go left when
// x <= thr), never a midpoint: (v[j]+v[j+1])/2 can round to v[j+1] for
// adjacent floats, which would send training points that went right at
// fit time to the left at predict time.
func (b *treeBuilder) bestSplit(lo, hi int, segSum, segSq, parentVar float64) (feat, nl int, thr, gain float64) {
	nFeat := b.ds.nFeat
	nTry := int(math.Ceil(b.cfg.FeatureFrac * float64(nFeat)))
	if nTry < 1 {
		nTry = 1
	}
	// Partial Fisher–Yates into the reused permutation scratch: only the
	// first nTry entries are shuffled and nothing allocates (the seed
	// engine built a full rng.Perm slice per node).
	ord := b.featOrd
	for i := 0; i < nTry; i++ {
		j := i + b.rng.Intn(nFeat-i)
		ord[i], ord[j] = ord[j], ord[i]
	}

	m := hi - lo
	n := float64(m)
	minLeaf := b.cfg.MinLeaf
	best := math.Inf(-1)
	feat = -1

	for _, f := range ord[:nTry] {
		col := b.sorted[f][lo:hi]
		vals := b.vals[f]
		var sumL, sqL float64
		sumR, sqR := segSum, segSq
		// One linear sweep evaluates every split point via prefix sums:
		// weighted child variance = E[t^2] - E[t]^2 per side.
		for j := 0; j < m-1; j++ {
			t := b.target[col[j]]
			sumL += t
			sqL += t * t
			sumR -= t
			sqR -= t * t
			v := vals[col[j]]
			if v == vals[col[j+1]] {
				continue // cannot split between equal values
			}
			l, r := j+1, m-j-1
			if l < minLeaf || r < minLeaf {
				continue
			}
			fl, fr := float64(l), float64(r)
			varL := sqL/fl - (sumL/fl)*(sumL/fl)
			varR := sqR/fr - (sumR/fr)*(sumR/fr)
			score := parentVar - (fl*varL+fr*varR)/n
			if score > best {
				best = score
				feat = f
				nl = l
				thr = v
			}
		}
	}
	if feat < 0 || best <= 1e-12 {
		return -1, 0, 0, 0
	}
	return feat, nl, thr, best
}

// partition stably splits col[lo:hi] by goesLeft: left-marked positions
// first, then the rest, each side keeping its sorted order. The write
// cursor never passes the read cursor, so compaction is in place; the
// right side stages through a scratch slice whose capacity was
// preallocated to n (append never allocates).
func (b *treeBuilder) partition(col []int32, lo, hi int) {
	scratch := b.part[:0]
	w := lo
	for _, p := range col[lo:hi] {
		if b.goesLeft[p] {
			col[w] = p
			w++
		} else {
			scratch = append(scratch, p)
		}
	}
	copy(col[w:hi], scratch)
}

// treeSeed derives tree t's RNG seed from the forest seed with a
// splitmix64-style mix, so per-tree streams are decorrelated and depend
// only on (Seed, t) — never on worker scheduling.
func treeSeed(seed int64, t int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(t+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// validateSamples checks shape consistency of a training set.
func validateSamples(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mlforest: empty training set")
	}
	nFeat := len(samples[0].Features)
	if nFeat == 0 {
		return fmt.Errorf("mlforest: samples have no features")
	}
	for i, s := range samples {
		if len(s.Features) != nFeat {
			return fmt.Errorf("mlforest: sample %d has %d features, want %d", i, len(s.Features), nFeat)
		}
	}
	return nil
}
