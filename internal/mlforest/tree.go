// Package mlforest implements CART regression trees and bagged random
// forests from scratch on the standard library.
//
// The paper's long-term utilization predictor is a random forest regressor
// (§3.3): "Random forest is well-suited for predicting VM utilization due
// to its effectiveness with categorical variables ... we choose random
// forest because it tends to be less sensitive to overfitting." This
// package is that model family; internal/predict assembles the feature
// vectors and bucket quantization around it.
package mlforest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sample is one training example: a dense feature vector and a target.
// Categorical features are encoded ordinally; CART threshold splits handle
// them adequately for the small cardinalities used here.
type Sample struct {
	Features []float64
	Target   float64
}

// TreeConfig bounds the growth of a single regression tree.
type TreeConfig struct {
	// MaxDepth limits tree depth; <=0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (>=1).
	MinLeaf int
	// FeatureFrac is the fraction of features considered at each split
	// in (0,1]; the classic random-forest decorrelation knob.
	FeatureFrac float64
}

// node is one tree node in the flat node array. Leaves have feature == -1.
type node struct {
	feature     int     // split feature, or -1 for a leaf
	threshold   float64 // go left when x[feature] <= threshold
	left, right int32   // child indexes
	value       float64 // leaf prediction (mean target)
}

// Tree is a trained CART regression tree.
type Tree struct {
	nodes []node
	// importance accumulates per-feature total variance reduction.
	importance []float64
}

// treeBuilder carries the state shared across the recursive build.
type treeBuilder struct {
	samples []Sample
	cfg     TreeConfig
	rng     *rand.Rand
	tree    *Tree
	nFeat   int
	// scratch feature order buffer reused across splits.
	order []int
}

// growTree trains a tree on the sample subset identified by idx
// (duplicates allowed: idx is a bootstrap sample).
func growTree(samples []Sample, idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	nFeat := len(samples[0].Features)
	b := &treeBuilder{
		samples: samples,
		cfg:     cfg,
		rng:     rng,
		tree:    &Tree{importance: make([]float64, nFeat)},
		nFeat:   nFeat,
	}
	b.build(idx, 0)
	return b.tree
}

// build grows the subtree for idx and returns its node index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	mean, variance := meanVar(b.samples, idx)
	me := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node{feature: -1, value: mean})

	if len(idx) < 2*b.cfg.MinLeaf || variance <= 1e-12 {
		return me
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return me
	}

	feat, thr, gain := b.bestSplit(idx, variance)
	if feat < 0 {
		return me
	}

	left := make([]int, 0, len(idx))
	right := make([]int, 0, len(idx))
	for _, i := range idx {
		if b.samples[i].Features[feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return me
	}

	b.tree.importance[feat] += gain * float64(len(idx))
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.nodes[me] = node{feature: feat, threshold: thr, left: l, right: r, value: mean}
	return me
}

// bestSplit scans a random subset of features for the threshold with the
// largest variance reduction. It returns feature -1 when no valid split
// improves on the parent.
func (b *treeBuilder) bestSplit(idx []int, parentVar float64) (feature int, threshold, gain float64) {
	nTry := int(math.Ceil(b.cfg.FeatureFrac * float64(b.nFeat)))
	if nTry < 1 {
		nTry = 1
	}
	feats := b.rng.Perm(b.nFeat)[:nTry]

	type valTarget struct{ v, t float64 }
	vals := make([]valTarget, len(idx))

	feature = -1
	bestScore := math.Inf(-1)
	n := float64(len(idx))

	for _, f := range feats {
		for j, i := range idx {
			vals[j] = valTarget{b.samples[i].Features[f], b.samples[i].Target}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })

		// Prefix sums let us evaluate every split point in one pass:
		// weighted child variance = E[t^2] - E[t]^2 per side.
		var sumL, sqL float64
		var sumR, sqR float64
		for _, vt := range vals {
			sumR += vt.t
			sqR += vt.t * vt.t
		}
		for j := 0; j < len(vals)-1; j++ {
			sumL += vals[j].t
			sqL += vals[j].t * vals[j].t
			sumR -= vals[j].t
			sqR -= vals[j].t * vals[j].t
			if vals[j].v == vals[j+1].v {
				continue // cannot split between equal values
			}
			nl, nr := float64(j+1), float64(len(vals)-j-1)
			if int(nl) < b.cfg.MinLeaf || int(nr) < b.cfg.MinLeaf {
				continue
			}
			varL := sqL/nl - (sumL/nl)*(sumL/nl)
			varR := sqR/nr - (sumR/nr)*(sumR/nr)
			weighted := (nl*varL + nr*varR) / n
			score := parentVar - weighted
			if score > bestScore {
				bestScore = score
				feature = f
				threshold = (vals[j].v + vals[j+1].v) / 2
			}
		}
	}
	if feature < 0 || bestScore <= 1e-12 {
		return -1, 0, 0
	}
	return feature, threshold, bestScore
}

// Predict returns the tree's prediction for one feature vector.
func (t *Tree) Predict(features []float64) float64 {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if features[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l, r := walk(nd.left), walk(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}

func meanVar(samples []Sample, idx []int) (mean, variance float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var sum, sq float64
	for _, i := range idx {
		t := samples[i].Target
		sum += t
		sq += t * t
	}
	n := float64(len(idx))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise
	}
	return mean, variance
}

// validateSamples checks shape consistency of a training set.
func validateSamples(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mlforest: empty training set")
	}
	nFeat := len(samples[0].Features)
	if nFeat == 0 {
		return fmt.Errorf("mlforest: samples have no features")
	}
	for i, s := range samples {
		if len(s.Features) != nFeat {
			return fmt.Errorf("mlforest: sample %d has %d features, want %d", i, len(s.Features), nFeat)
		}
	}
	return nil
}
