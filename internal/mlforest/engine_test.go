package mlforest

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

// seedEngineMSE is the recorded test MSE of the seed (pre-columnar)
// training engine on TraceLikeSamples(3000, 11)/TraceLikeSamples(1000, 12)
// with DefaultForestConfig, measured at commit 60f8501 before the rewrite.
// The parity guard below keeps the rewritten engine's quality within 5%
// of it.
const seedEngineMSE = 0.0006143542

func TestMSEParityWithSeedEngine(t *testing.T) {
	train := TraceLikeSamples(3000, 11)
	test := TraceLikeSamples(1000, 12)
	f, err := Train(train, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mse := f.MSE(test)
	t.Logf("columnar engine MSE %.10f (seed engine recorded %.10f)", mse, seedEngineMSE)
	if mse > 1.05*seedEngineMSE {
		t.Errorf("columnar engine MSE %v regressed more than 5%% over seed engine's %v", mse, seedEngineMSE)
	}
	if mse < 0.5*seedEngineMSE {
		t.Errorf("columnar engine MSE %v implausibly below seed engine's %v — suspect target leakage", mse, seedEngineMSE)
	}
}

// TestForestByteIdenticalAcrossWorkers is the training-engine counterpart
// of the simulator's worker-count determinism guarantee: the gob encoding
// of the whole arena (every node, child link, root and importance sum)
// must match byte for byte whichever way the trees were scheduled.
func TestForestByteIdenticalAcrossWorkers(t *testing.T) {
	data := TraceLikeSamples(600, 21)
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultForestConfig()
		cfg.Workers = workers
		f, err := Train(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := f.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("forest trained with Workers=%d differs from Workers=1", workers)
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	data := TraceLikeSamples(200, 22)
	f, err := Train(data, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := f.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := g.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		feat := data[i].Features
		if g.Predict(feat) != f.Predict(feat) {
			t.Fatal("decoded forest predicts differently")
		}
	}
	if g.NumTrees() != f.NumTrees() || g.NumFeatures() != f.NumFeatures() || g.MemoryBytes() != f.MemoryBytes() {
		t.Error("decoded forest shape differs")
	}
}

// TestThresholdAdjacentFloats is the regression test for the seed engine's
// duplicate-threshold edge: with left value v1 = prevafter(2) and right
// value v2 = 2, the midpoint (v1+v2)/2 rounds to exactly v2, so training
// points that went right at fit time would go left at predict time. The
// engine now splits on <= of the left value instead.
func TestThresholdAdjacentFloats(t *testing.T) {
	v1 := math.Nextafter(2, 1) // largest float64 below 2
	v2 := 2.0
	if mid := (v1 + v2) / 2; mid != v2 {
		t.Fatalf("test premise broken: midpoint %v != right value %v", mid, v2)
	}
	var samples []Sample
	for i := 0; i < 20; i++ {
		samples = append(samples,
			Sample{Features: []float64{v1}, Target: 0},
			Sample{Features: []float64{v2}, Target: 1},
		)
	}
	cfg := ForestConfig{Trees: 5, Tree: TreeConfig{MinLeaf: 1, FeatureFrac: 1}, Seed: 1}
	f, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{v2}); math.Abs(got-1) > 1e-9 {
		t.Errorf("right-side value predicts %v, want 1 (midpoint threshold would leak it left)", got)
	}
	if got := f.Predict([]float64{v1}); math.Abs(got) > 1e-9 {
		t.Errorf("left-side value predicts %v, want 0", got)
	}
}

// TestMemoryBytesArena pins MemoryBytes to the model's real SoA footprint:
// per node one int32 feature, two int32 children, one float64 threshold
// and one float64 value in the depth-first arena, plus the breadth-first
// mirror's 16-byte packed node and leaf-value slot per node, the per-tree
// roots (arena), roots+depths (mirror) and the per-feature importance
// sums.
func TestMemoryBytesArena(t *testing.T) {
	f, err := Train(TraceLikeSamples(300, 23), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := f.NumNodes()*(3*4+2*8) + f.NumNodes()*(16+8) + f.NumTrees()*(4+2*4) + f.NumFeatures()*8
	if got := f.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d (%d nodes, %d trees, %d features)",
			got, want, f.NumNodes(), f.NumTrees(), f.NumFeatures())
	}
	var nodes int
	for i := 0; i < f.NumTrees(); i++ {
		nodes += f.TreeNodes(i)
	}
	if nodes != f.NumNodes() {
		t.Errorf("per-tree node counts sum to %d, arena has %d", nodes, f.NumNodes())
	}
}

// TestTrainOnMatrixEquivalence pins the documented guarantee that Train
// and NewMatrix+TrainOnMatrix produce byte-identical forests, and that
// one matrix serves two target vectors independently.
func TestTrainOnMatrixEquivalence(t *testing.T) {
	data := TraceLikeSamples(500, 25)
	rows := make([][]float64, len(data))
	targets := make([]float64, len(data))
	alt := make([]float64, len(data))
	for i, s := range data {
		rows[i] = s.Features
		targets[i] = s.Target
		alt[i] = s.Target * 2
	}
	want, err := Train(data, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != len(rows) || m.NumFeatures() != 10 {
		t.Fatalf("matrix shape %dx%d", m.NumRows(), m.NumFeatures())
	}
	got, err := TrainOnMatrix(m, targets, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, _ := want.GobEncode()
	gotEnc, _ := got.GobEncode()
	if !bytes.Equal(wantEnc, gotEnc) {
		t.Fatal("TrainOnMatrix differs from Train on identical rows/targets")
	}
	// The same matrix must train a second, different forest untouched by
	// the first (the dataset is read-only during growth).
	other, err := TrainOnMatrix(m, alt, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p, q := got.Predict(rows[0]), other.Predict(rows[0]); p == q {
		t.Errorf("doubled targets trained an identical forest (both predict %v)", p)
	}
	again, err := TrainOnMatrix(m, targets, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	againEnc, _ := again.GobEncode()
	if !bytes.Equal(againEnc, wantEnc) {
		t.Fatal("matrix reuse changed a retrained forest — growth mutated the dataset")
	}

	if _, err := NewMatrix(nil); err == nil {
		t.Error("empty matrix must fail")
	}
	if _, err := NewMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix must fail")
	}
	if _, err := TrainOnMatrix(m, targets[:10], DefaultForestConfig()); err == nil {
		t.Error("target/row length mismatch must fail")
	}
}

// TestGobDecodeRejectsCorruptArena checks that structurally invalid
// payloads fail at decode time instead of panicking inside Predict.
func TestGobDecodeRejectsCorruptArena(t *testing.T) {
	f, err := Train(TraceLikeSamples(100, 26), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(*forestWire)) {
		w := forestWire{
			Feature: append([]int32(nil), f.feature...), Threshold: append([]float64(nil), f.threshold...),
			Left: append([]int32(nil), f.left...), Right: append([]int32(nil), f.right...),
			Value: append([]float64(nil), f.value...), Roots: append([]int32(nil), f.roots...),
			Importance: append([]float64(nil), f.importance...), NFeat: f.nFeat, NSamples: f.nSamples,
		}
		mutate(&w)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		var g Forest
		if err := g.GobDecode(buf.Bytes()); err == nil {
			t.Errorf("%s: corrupt payload decoded without error", name)
		}
	}
	corrupt("truncated thresholds", func(w *forestWire) { w.Threshold = w.Threshold[:1] })
	corrupt("child outside arena", func(w *forestWire) {
		for i := range w.Feature {
			if w.Feature[i] >= 0 {
				w.Left[i] = int32(len(w.Feature)) + 5
				return
			}
		}
	})
	corrupt("root outside arena", func(w *forestWire) { w.Roots[0] = -1 })
	corrupt("cyclic child link", func(w *forestWire) {
		for i := range w.Feature {
			if w.Feature[i] >= 0 {
				w.Left[i] = int32(i) // self-loop: Predict would spin forever
				return
			}
		}
	})
	corrupt("feature beyond dimensionality", func(w *forestWire) {
		for i := range w.Feature {
			if w.Feature[i] >= 0 {
				w.Feature[i] = int32(w.NFeat)
				return
			}
		}
	})
	corrupt("importance length mismatch", func(w *forestWire) { w.Importance = w.Importance[:1] })
}

// TestWorkersIgnoredByQuality sanity-checks that parallel training trains
// the same number of usable trees (every root reachable, every walk
// terminating) by predicting through a forest trained with many workers.
func TestWorkersIgnoredByQuality(t *testing.T) {
	data := TraceLikeSamples(400, 24)
	cfg := DefaultForestConfig()
	cfg.Workers = 8
	f, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != cfg.Trees {
		t.Fatalf("trained %d trees, want %d", f.NumTrees(), cfg.Trees)
	}
	for i := 0; i < 50; i++ {
		if p := f.Predict(data[i].Features); math.IsNaN(p) {
			t.Fatal("NaN prediction")
		}
	}
}
