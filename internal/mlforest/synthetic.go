package mlforest

import (
	"math"
	"math/rand"
)

// TraceLikeSamples synthesizes a deterministic regression set shaped like
// the long-term predictor's training rows: 10-dimensional vectors with
// mixed categorical and continuous features and a target driven by a few
// of them. It is the fixed dataset behind the training benchmarks
// (BenchmarkForestTrain), the recorded before/after numbers in
// BENCH_forest.json and the engine-parity guard (TestMSEParityWithSeedEngine)
// — those artifacts assume this exact distribution, so changing it
// invalidates their recorded constants.
func TraceLikeSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		f := make([]float64, 10)
		f[0] = float64(1 + rng.Intn(16))         // cores
		f[1] = f[0] * (1 + 3*rng.Float64())      // memory GB
		f[2] = f[1] / f[0]                       // GB/core
		f[3] = float64(rng.Intn(2))              // offering
		f[4] = float64(rng.Intn(3))              // subscription type
		f[5] = float64(rng.Intn(7))              // weekday
		f[6] = float64(rng.Intn(6))              // window
		f[7] = math.Log1p(float64(rng.Intn(40))) // history count
		f[8] = rng.Float64()                     // history mean peak
		f[9] = f[8] * rng.Float64()              // history mean of means
		y := 0.2 + 0.5*f[8] + 0.1*f[9] + 0.05*math.Sin(f[6]) + 0.03*f[3] + 0.02*rng.NormFloat64()
		out[i] = Sample{Features: f, Target: y}
	}
	return out
}
