package mlforest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearData builds samples with target = 2*x0 + noise and one noise
// feature x1.
func linearData(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x0 := rng.Float64()
		x1 := rng.Float64()
		out[i] = Sample{Features: []float64{x0, x1}, Target: 2*x0 + 0.05*rng.NormFloat64()}
	}
	return out
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, DefaultForestConfig()); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := Train([]Sample{{Features: nil, Target: 1}}, DefaultForestConfig()); err == nil {
		t.Error("featureless samples must fail")
	}
	ragged := []Sample{
		{Features: []float64{1, 2}, Target: 1},
		{Features: []float64{1}, Target: 2},
	}
	if _, err := Train(ragged, DefaultForestConfig()); err == nil {
		t.Error("ragged features must fail")
	}
	cfg := DefaultForestConfig()
	cfg.Trees = 0
	if _, err := Train(linearData(10, 1), cfg); err == nil {
		t.Error("zero trees must fail")
	}
}

func TestForestLearnsLinearSignal(t *testing.T) {
	train := linearData(400, 1)
	test := linearData(100, 2)
	f, err := Train(train, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mse := f.MSE(test)

	// Baseline: predicting the training mean.
	var mean float64
	for _, s := range train {
		mean += s.Target
	}
	mean /= float64(len(train))
	var baseMSE float64
	for _, s := range test {
		d := s.Target - mean
		baseMSE += d * d
	}
	baseMSE /= float64(len(test))

	if mse >= baseMSE/4 {
		t.Errorf("forest MSE %v not substantially better than mean baseline %v", mse, baseMSE)
	}
}

func TestForestConstantTarget(t *testing.T) {
	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = Sample{Features: []float64{float64(i), float64(i % 3)}, Target: 7}
	}
	f, err := Train(samples, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{25, 1}); math.Abs(got-7) > 1e-9 {
		t.Errorf("constant-target forest predicts %v, want 7", got)
	}
}

func TestForestDeterministic(t *testing.T) {
	data := linearData(100, 3)
	a, _ := Train(data, DefaultForestConfig())
	b, _ := Train(data, DefaultForestConfig())
	for i := 0; i < 20; i++ {
		feat := []float64{float64(i) / 20, 0.5}
		if a.Predict(feat) != b.Predict(feat) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestForestSeedChangesModel(t *testing.T) {
	data := linearData(100, 3)
	cfgA := DefaultForestConfig()
	cfgB := DefaultForestConfig()
	cfgB.Seed = 999
	a, _ := Train(data, cfgA)
	b, _ := Train(data, cfgB)
	same := true
	for i := 0; i < 20 && same; i++ {
		feat := []float64{float64(i) / 20, 0.5}
		if a.Predict(feat) != b.Predict(feat) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical forests (suspicious)")
	}
}

// Property: predictions stay within the range of training targets
// (tree leaves are means of training subsets).
func TestPredictionWithinTargetRangeProperty(t *testing.T) {
	data := linearData(200, 4)
	f, err := Train(data, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range data {
		lo = math.Min(lo, s.Target)
		hi = math.Max(hi, s.Target)
	}
	prop := func(x0, x1 float64) bool {
		p := f.Predict([]float64{math.Mod(math.Abs(x0), 2), math.Mod(math.Abs(x1), 2)})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	f, err := Train(linearData(400, 5), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance length %d", len(imp))
	}
	if imp[0] < imp[1] {
		t.Errorf("informative feature importance %v < noise feature %v", imp[0], imp[1])
	}
	if sum := imp[0] + imp[1]; math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	cfg := ForestConfig{Trees: 3, Tree: TreeConfig{MaxDepth: 2, MinLeaf: 1, FeatureFrac: 1}, Seed: 1}
	f, err := Train(linearData(200, 6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.NumTrees(); i++ {
		if d := f.TreeDepth(i); d > 2 {
			t.Errorf("tree %d depth %d exceeds MaxDepth 2", i, d)
		}
	}
}

func TestPredictWrongDimension(t *testing.T) {
	f, _ := Train(linearData(50, 7), DefaultForestConfig())
	if got := f.Predict([]float64{1}); got != 0 {
		t.Errorf("wrong-dimension predict = %v, want 0", got)
	}
}

func TestAccessors(t *testing.T) {
	f, _ := Train(linearData(50, 8), DefaultForestConfig())
	if f.NumTrees() != 40 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	if f.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d", f.NumFeatures())
	}
	if f.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

func TestTreeSingleLeaf(t *testing.T) {
	// Two identical samples cannot be split.
	samples := []Sample{
		{Features: []float64{1}, Target: 5},
		{Features: []float64{1}, Target: 5},
	}
	f, err := Train(samples, ForestConfig{Trees: 1, Tree: TreeConfig{MinLeaf: 1, FeatureFrac: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.TreeDepth(0) != 0 {
		t.Errorf("unsplittable data produced depth %d", f.TreeDepth(0))
	}
	if got := f.Predict([]float64{1}); got != 5 {
		t.Errorf("predict = %v", got)
	}
}

func TestStepFunctionLearned(t *testing.T) {
	// Target is a step at x=0.5: trees should capture it crisply.
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		y := 0.0
		if x >= 0.5 {
			y = 1
		}
		samples = append(samples, Sample{Features: []float64{x}, Target: y})
	}
	f, err := Train(samples, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.25}); got > 0.2 {
		t.Errorf("left of step predicts %v", got)
	}
	if got := f.Predict([]float64{0.75}); got < 0.8 {
		t.Errorf("right of step predicts %v", got)
	}
}

func TestMSEEmpty(t *testing.T) {
	f, _ := Train(linearData(50, 9), DefaultForestConfig())
	if f.MSE(nil) != 0 {
		t.Error("MSE of empty set != 0")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	f, err := Train(linearData(400, 1), DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := linearData(100, 2)
	rows := make([][]float64, len(test))
	for i, s := range test {
		rows[i] = s.Features
	}
	got := f.PredictBatch(rows, nil)
	for i, r := range rows {
		if want := f.Predict(r); got[i] != want {
			t.Fatalf("row %d: batch %v != single %v", i, got[i], want)
		}
	}
	// Reusing the output buffer must overwrite, not accumulate.
	again := f.PredictBatch(rows, got)
	for i, r := range rows {
		if want := f.Predict(r); again[i] != want {
			t.Fatalf("row %d after reuse: batch %v != single %v", i, again[i], want)
		}
	}
	// Ragged rows fall back to the per-row path: wrong lengths predict 0.
	rows[3] = []float64{1}
	mixed := f.PredictBatch(rows, nil)
	if mixed[3] != 0 {
		t.Errorf("short row predicted %v, want 0", mixed[3])
	}
	if want := f.Predict(rows[0]); mixed[0] != want {
		t.Errorf("valid row in mixed batch predicted %v, want %v", mixed[0], want)
	}
}
