package resources

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func vec(c, m, n, s float64) Vector { return NewVector(c, m, n, s) }

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CPU: "CPU", Memory: "Memory", Network: "Network", SSD: "SSD"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindUnit(t *testing.T) {
	if CPU.Unit() != "cores" || Memory.Unit() != "GB" || Network.Unit() != "Gbps" || SSD.Unit() != "GB" {
		t.Errorf("unexpected units: %s %s %s %s", CPU.Unit(), Memory.Unit(), Network.Unit(), SSD.Unit())
	}
}

func TestKindsOrder(t *testing.T) {
	if len(Kinds) != int(NumKinds) {
		t.Fatalf("Kinds has %d entries, want %d", len(Kinds), NumKinds)
	}
	for i, k := range Kinds {
		if int(k) != i {
			t.Errorf("Kinds[%d] = %v", i, k)
		}
	}
}

func TestNewVectorGet(t *testing.T) {
	v := vec(8, 32, 10, 300)
	if v.Get(CPU) != 8 || v.Get(Memory) != 32 || v.Get(Network) != 10 || v.Get(SSD) != 300 {
		t.Errorf("NewVector fields wrong: %v", v)
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	v := vec(1, 2, 3, 4)
	w := v.With(Memory, 99)
	if v[Memory] != 2 {
		t.Errorf("With mutated receiver: %v", v)
	}
	if w[Memory] != 99 || w[CPU] != 1 {
		t.Errorf("With result wrong: %v", w)
	}
}

func TestAddSub(t *testing.T) {
	a := vec(1, 2, 3, 4)
	b := vec(10, 20, 30, 40)
	if got := a.Add(b); got != vec(11, 22, 33, 44) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != vec(9, 18, 27, 36) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScaleMul(t *testing.T) {
	a := vec(1, 2, 3, 4)
	if got := a.Scale(2); got != vec(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(vec(2, 0.5, 1, 0)); got != vec(2, 1, 3, 0) {
		t.Errorf("Mul = %v", got)
	}
}

func TestMaxMin(t *testing.T) {
	a := vec(1, 20, 3, 40)
	b := vec(10, 2, 30, 4)
	if got := a.Max(b); got != vec(10, 20, 30, 40) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != vec(1, 2, 3, 4) {
		t.Errorf("Min = %v", got)
	}
}

func TestClampNonNegative(t *testing.T) {
	if got := vec(-1, 2, -3, 0).ClampNonNegative(); got != vec(0, 2, 0, 0) {
		t.Errorf("ClampNonNegative = %v", got)
	}
}

func TestFitsIn(t *testing.T) {
	cap := vec(16, 64, 20, 1000)
	if !vec(8, 32, 10, 300).FitsIn(cap) {
		t.Error("should fit")
	}
	if vec(8, 65, 10, 300).FitsIn(cap) {
		t.Error("memory exceeds capacity: must not fit")
	}
	if !cap.FitsIn(cap) {
		t.Error("capacity must fit itself")
	}
}

func TestIsZeroPositive(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector IsZero false")
	}
	if vec(0, 0, 0, 1).IsZero() {
		t.Error("nonzero vector IsZero true")
	}
	if !vec(1, 1, 1, 1).Positive() {
		t.Error("all-positive vector Positive false")
	}
	if vec(1, 0, 1, 1).Positive() {
		t.Error("vector with zero Positive true")
	}
}

func TestDotProduct(t *testing.T) {
	if got := vec(1, 2, 3, 4).DotProduct(vec(4, 3, 2, 1)); got != 4+6+6+4 {
		t.Errorf("DotProduct = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	got := vec(8, 32, 0, 0).Utilization(vec(16, 64, 0, 100))
	want := vec(0.5, 0.5, 0, 0)
	if got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestMaxFraction(t *testing.T) {
	k, f := vec(8, 60, 1, 1).MaxFraction(vec(16, 64, 20, 1000))
	if k != Memory {
		t.Errorf("bottleneck = %v, want Memory", k)
	}
	if math.Abs(f-60.0/64) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestString(t *testing.T) {
	s := vec(8, 32, 10, 300).String()
	for _, want := range []string{"8 cores", "32 GB", "10 Gbps", "300 GB ssd"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: Add is commutative.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b Vector) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub is the inverse of Add (over realistic magnitudes; at
// ~1e308 floating-point cancellation voids the identity).
func TestAddSubRoundtripProperty(t *testing.T) {
	bound := func(v Vector) Vector {
		for i := range v {
			v[i] = math.Mod(v[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		return v
	}
	f := func(a, b Vector) bool {
		a, b = bound(a), bound(b)
		got := a.Add(b).Sub(b)
		for i := range got {
			if math.Abs(got[i]-a[i]) > 1e-6*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampNonNegative is idempotent and yields no negatives.
func TestClampIdempotentProperty(t *testing.T) {
	f := func(a Vector) bool {
		c := a.ClampNonNegative()
		for i := range c {
			if c[i] < 0 {
				return false
			}
		}
		return c == c.ClampNonNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max(a,b) fits neither below a nor below b.
func TestMaxDominatesProperty(t *testing.T) {
	f := func(a, b Vector) bool {
		m := a.Max(b)
		return a.FitsIn(m) && b.FitsIn(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 10 {
		t.Fatalf("Table1 has %d rows, want 10 (paper Table 1)", len(rows))
	}
	byName := map[string]Fungibility{}
	for _, r := range rows {
		byName[r.Name] = r.Fungibility
	}
	for name, want := range map[string]Fungibility{
		"CPU":              Fungible,
		"Memory space":     NonFungible,
		"GPU":              NonFungible,
		"Power":            Fungible,
		"Memory bandwidth": Fungible,
	} {
		if got, ok := byName[name]; !ok || got != want {
			t.Errorf("Table1[%q] = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}

func TestKindFungibility(t *testing.T) {
	if KindFungibility(CPU) != Fungible || KindFungibility(Network) != Fungible {
		t.Error("CPU and network must be fungible")
	}
	if KindFungibility(Memory) != NonFungible || KindFungibility(SSD) != NonFungible {
		t.Error("memory and SSD space must be non-fungible")
	}
}

func TestFungibilityString(t *testing.T) {
	if Fungible.String() != "fungible" || NonFungible.String() != "non-fungible" {
		t.Error("fungibility strings wrong")
	}
}
