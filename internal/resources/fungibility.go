package resources

// Fungibility distinguishes resources that can be quickly reassigned
// between VMs from those that cannot (paper §3.2, Table 1). Fungible
// resources are multiplexed by the hypervisor on demand; non-fungible ones
// must be partitioned carefully (e.g., physical memory pages must be paged
// out before reassignment).
type Fungibility int

const (
	// Fungible resources can be reassigned between VMs in microseconds to
	// milliseconds (CPU time, bandwidth shares).
	Fungible Fungibility = iota
	// NonFungible resources hold state that must be drained or copied
	// before reassignment (memory pages, disk partitions, SR-IOV functions).
	NonFungible
)

func (f Fungibility) String() string {
	if f == Fungible {
		return "fungible"
	}
	return "non-fungible"
}

// SharedResource describes one row of the paper's Table 1: a resource, its
// fungibility, and the mechanism used to share it across VMs.
type SharedResource struct {
	Name        string
	Fungibility Fungibility
	Mechanism   string
	// Kind is the managed Kind the row maps to, or -1 when the row is a
	// sub-resource Coach tracks but does not schedule independently
	// (e.g., memory bandwidth, power).
	Kind Kind
}

// Table1 reproduces the paper's Table 1 verbatim: common fungible and
// non-fungible resources and the mechanisms used to share them.
func Table1() []SharedResource {
	return []SharedResource{
		{Name: "CPU", Fungibility: Fungible, Mechanism: "CPU groups", Kind: CPU},
		{Name: "Memory space", Fungibility: NonFungible, Mechanism: "PA/VA portions, VA-backing", Kind: Memory},
		{Name: "Memory bandwidth", Fungibility: Fungible, Mechanism: "Shares, reservations, caps", Kind: -1},
		{Name: "Network bandwidth", Fungibility: Fungible, Mechanism: "Shares, reservations, caps", Kind: Network},
		{Name: "Accelerated network", Fungibility: NonFungible, Mechanism: "SR-IOV", Kind: -1},
		{Name: "Storage bandwidth", Fungibility: Fungible, Mechanism: "Shares, reservations, caps", Kind: -1},
		{Name: "Local storage space", Fungibility: NonFungible, Mechanism: "Disk partitions, DDA, SR-IOV", Kind: SSD},
		{Name: "Remote storage space", Fungibility: Fungible, Mechanism: "Cache size and network bandwidth", Kind: -1},
		{Name: "GPU", Fungibility: NonFungible, Mechanism: "DDA, SR-IOV", Kind: -1},
		{Name: "Power", Fungibility: Fungible, Mechanism: "Frequency and power caps", Kind: -1},
	}
}

// KindFungibility returns the fungibility of a scheduled resource kind.
// Memory space and local SSD space are non-fungible; CPU and network
// bandwidth are fungible.
func KindFungibility(k Kind) Fungibility {
	switch k {
	case Memory, SSD:
		return NonFungible
	default:
		return Fungible
	}
}
