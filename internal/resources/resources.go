// Package resources defines the resource kinds managed by Coach and the
// vector arithmetic used throughout scheduling and simulation.
//
// Coach manages all server resources holistically (paper §1, §2.2). A
// resource amount is always expressed in the natural unit of its kind:
// cores for CPU, GB for memory, Gbps for network bandwidth and GB for
// local SSD space. Utilization, in contrast, is expressed as a fraction of
// the allocation in [0, 1] (see internal/timeseries).
package resources

import (
	"fmt"
	"strings"
)

// Kind identifies one of the managed resource types.
type Kind int

// The resource kinds Coach oversubscribes, in the order used by Vector.
const (
	CPU      Kind = iota // cores (hyperthreads normalized to cores)
	Memory               // GB of DRAM
	Network              // Gbps of NIC bandwidth
	SSD                  // GB of local SSD space
	NumKinds             // number of resource kinds; not itself a kind
)

// Kinds lists every managed resource kind in canonical order.
var Kinds = [NumKinds]Kind{CPU, Memory, Network, SSD}

// String returns the short human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case Memory:
		return "Memory"
	case Network:
		return "Network"
	case SSD:
		return "SSD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit returns the unit the kind is measured in.
func (k Kind) Unit() string {
	switch k {
	case CPU:
		return "cores"
	case Memory:
		return "GB"
	case Network:
		return "Gbps"
	case SSD:
		return "GB"
	default:
		return "?"
	}
}

// Vector holds one amount per resource kind, indexed by Kind.
// The zero value is the empty allocation.
type Vector [NumKinds]float64

// NewVector builds a vector from explicit per-kind amounts.
func NewVector(cpu, memory, network, ssd float64) Vector {
	return Vector{CPU: cpu, Memory: memory, Network: network, SSD: ssd}
}

// Get returns the amount for kind k.
func (v Vector) Get(k Kind) float64 { return v[k] }

// With returns a copy of v with kind k set to amount.
func (v Vector) With(k Kind, amount float64) Vector {
	v[k] = amount
	return v
}

// Add returns the element-wise sum v + o.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns the element-wise difference v - o.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v with every element multiplied by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mul returns the element-wise product v * o. It is the conversion from
// fractional utilization (o) to absolute demand given an allocation (v).
func (v Vector) Mul(o Vector) Vector {
	for i := range v {
		v[i] *= o[i]
	}
	return v
}

// Max returns the element-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Min returns the element-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	for i := range v {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// ClampNonNegative returns v with negative elements replaced by zero.
func (v Vector) ClampNonNegative() Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// FitsIn reports whether every element of v is at most the corresponding
// element of capacity. It is the feasibility check used by vector
// bin-packing schedulers (paper §3.3).
func (v Vector) FitsIn(capacity Vector) bool {
	for i := range v {
		if v[i] > capacity[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every element is exactly zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// Positive reports whether every element is strictly greater than zero.
func (v Vector) Positive() bool {
	for i := range v {
		if v[i] <= 0 {
			return false
		}
	}
	return true
}

// DotProduct returns the sum over kinds of v[k]*o[k]. Schedulers use it as
// an alignment score between VM demand and remaining server capacity.
func (v Vector) DotProduct(o Vector) float64 {
	var sum float64
	for i := range v {
		sum += v[i] * o[i]
	}
	return sum
}

// Utilization returns, per kind, v[k]/capacity[k] (0 when the capacity is
// zero). It converts absolute demand back into fractions of a server.
func (v Vector) Utilization(capacity Vector) Vector {
	var out Vector
	for i := range v {
		if capacity[i] > 0 {
			out[i] = v[i] / capacity[i]
		}
	}
	return out
}

// MaxFraction returns the largest element of v.Utilization(capacity) and
// the kind that attains it. It identifies the bottleneck resource.
func (v Vector) MaxFraction(capacity Vector) (Kind, float64) {
	frac := v.Utilization(capacity)
	best := CPU
	for _, k := range Kinds {
		if frac[k] > frac[best] {
			best = k
		}
	}
	return best, frac[best]
}

// String renders the vector with units, e.g.
// "{8 cores, 32 GB, 10 Gbps, 300 GB ssd}".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range Kinds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g %s", v[k], k.Unit())
		if k == SSD {
			b.WriteString(" ssd")
		}
	}
	b.WriteByte('}')
	return b.String()
}
