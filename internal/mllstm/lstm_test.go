package mllstm

import (
	"math"
	"testing"
)

func seq(vals ...float64) [][]float64 {
	out := make([][]float64, len(vals))
	for i, v := range vals {
		out[i] = []float64{v, v}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 0, HiddenDim: 4}); err == nil {
		t.Error("zero input dim must fail")
	}
	if _, err := New(Config{InputDim: 2, HiddenDim: 0}); err == nil {
		t.Error("zero hidden dim must fail")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPredictEmptySequence(t *testing.T) {
	l, _ := New(DefaultConfig())
	if got := l.Predict(nil); got != 0 {
		t.Errorf("empty sequence predict = %v", got)
	}
}

func TestPredictDeterministic(t *testing.T) {
	a, _ := New(DefaultConfig())
	b, _ := New(DefaultConfig())
	s := seq(0.1, 0.2, 0.3, 0.4, 0.5)
	if a.Predict(s) != b.Predict(s) {
		t.Error("same seed must give identical predictions")
	}
}

func TestTrainConvergesOnConstant(t *testing.T) {
	l, _ := New(DefaultConfig())
	s := seq(0.5, 0.5, 0.5, 0.5, 0.5)
	for i := 0; i < 400; i++ {
		l.Train(s, 0.5)
	}
	if got := l.Predict(s); math.Abs(got-0.5) > 0.05 {
		t.Errorf("after training on constant 0.5, predict = %v", got)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	l, _ := New(DefaultConfig())
	// A small dataset: next value continues a ramp.
	data := []struct {
		s [][]float64
		y float64
	}{
		{seq(0.1, 0.2, 0.3, 0.4, 0.5), 0.6},
		{seq(0.2, 0.3, 0.4, 0.5, 0.6), 0.7},
		{seq(0.5, 0.4, 0.3, 0.2, 0.1), 0.0},
		{seq(0.6, 0.5, 0.4, 0.3, 0.2), 0.1},
	}
	loss := func() float64 {
		var sum float64
		for _, d := range data {
			e := l.Predict(d.s) - d.y
			sum += e * e
		}
		return sum
	}
	before := loss()
	for epoch := 0; epoch < 300; epoch++ {
		for _, d := range data {
			l.Train(d.s, d.y)
		}
	}
	after := loss()
	if after >= before/2 {
		t.Errorf("loss did not halve: before %v, after %v", before, after)
	}
}

func TestTrainDistinguishesPatterns(t *testing.T) {
	// Rising sequences continue high; falling sequences continue low.
	l, _ := New(DefaultConfig())
	rise := seq(0.1, 0.3, 0.5, 0.7, 0.9)
	fall := seq(0.9, 0.7, 0.5, 0.3, 0.1)
	for i := 0; i < 500; i++ {
		l.Train(rise, 1.0)
		l.Train(fall, 0.0)
	}
	if pr, pf := l.Predict(rise), l.Predict(fall); pr-pf < 0.5 {
		t.Errorf("failed to separate patterns: rise=%v fall=%v", pr, pf)
	}
}

func TestTrainReturnsPreUpdateError(t *testing.T) {
	l, _ := New(DefaultConfig())
	s := seq(0.2, 0.2, 0.2, 0.2, 0.2)
	pred := l.Predict(s)
	if got := l.Train(s, 0.9); math.Abs(got-(pred-0.9)) > 1e-12 {
		t.Errorf("Train returned %v, want %v", got, pred-0.9)
	}
}

func TestTrainEmptySequenceNoop(t *testing.T) {
	l, _ := New(DefaultConfig())
	if got := l.Train(nil, 1); got != 0 {
		t.Errorf("empty train = %v", got)
	}
	if l.Steps() != 0 {
		t.Error("empty train must not count a step")
	}
}

func TestStepsCount(t *testing.T) {
	l, _ := New(DefaultConfig())
	s := seq(0.1, 0.2)
	for i := 0; i < 7; i++ {
		l.Train(s, 0.3)
	}
	if l.Steps() != 7 {
		t.Errorf("Steps = %d", l.Steps())
	}
}

func TestMemoryBytesScale(t *testing.T) {
	l, _ := New(DefaultConfig())
	// Paper §4.5: each local predictor takes ~25KB; our default network
	// must be in the same ballpark (small).
	if mb := l.MemoryBytes(); mb <= 0 || mb > 64<<10 {
		t.Errorf("MemoryBytes = %d, want small (<64KiB)", mb)
	}
}

func TestGradientClippingStaysFinite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LearningRate = 1 // aggressive
	l, _ := New(cfg)
	s := seq(1, 1, 1, 1, 1)
	for i := 0; i < 100; i++ {
		l.Train(s, 1000) // extreme target
	}
	if p := l.Predict(s); math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("network diverged to %v despite clipping", p)
	}
}

func TestVariableLengthSequences(t *testing.T) {
	l, _ := New(DefaultConfig())
	for i := 1; i <= 6; i++ {
		vals := make([]float64, i)
		for j := range vals {
			vals[j] = 0.1 * float64(j)
		}
		l.Train(seq(vals...), 0.5)
		if p := l.Predict(seq(vals...)); math.IsNaN(p) {
			t.Fatalf("NaN for length-%d sequence", i)
		}
	}
}
