// Package mllstm implements a compact single-layer LSTM regressor with
// full backpropagation through time, from scratch on the standard library.
//
// Coach's local prediction component uses "a long short-term memory network
// (LSTM) for the next 5 minutes ... The LSTM uses the maximum and average
// utilization in the five previous 5-minute windows as input and is also
// updated online" (paper §3.4, §3.6). The model here matches that scale:
// ~25KB of state and sub-millisecond training/inference cycles.
package mllstm

import (
	"fmt"
	"math"
	"math/rand"
)

// Config sizes the network.
type Config struct {
	// InputDim is the number of features per timestep (paper: 2 —
	// window max and window average).
	InputDim int
	// HiddenDim is the LSTM state width.
	HiddenDim int
	// LearningRate is the SGD step size for online updates.
	LearningRate float64
	// Clip bounds each gradient element (<=0 disables clipping).
	Clip float64
	// Seed initializes the weights deterministically.
	Seed int64
}

// DefaultConfig returns a small network suitable for per-VM online
// utilization prediction.
func DefaultConfig() Config {
	return Config{InputDim: 2, HiddenDim: 8, LearningRate: 0.05, Clip: 1.0, Seed: 7}
}

// LSTM is a single-layer LSTM with a scalar linear head. It is trained
// online: each Train call does one forward+BPTT pass over one sequence.
type LSTM struct {
	cfg Config

	// Gate weights, one matrix per gate, laid out [hidden][input].
	wi, wf, wo, wg [][]float64
	// Recurrent weights [hidden][hidden].
	ui, uf, uo, ug [][]float64
	// Gate biases.
	bi, bf, bo, bg []float64
	// Output head.
	wy []float64
	by float64

	steps int // training steps taken
}

// New creates an initialized network. Forget-gate biases start at 1, the
// standard trick to preserve memory early in training.
func New(cfg Config) (*LSTM, error) {
	if cfg.InputDim < 1 || cfg.HiddenDim < 1 {
		return nil, fmt.Errorf("mllstm: invalid dims input=%d hidden=%d", cfg.InputDim, cfg.HiddenDim)
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h, in := cfg.HiddenDim, cfg.InputDim
	scale := 1 / math.Sqrt(float64(in+h))
	mat := func(rows, cols int) [][]float64 {
		m := make([][]float64, rows)
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64() * scale
			}
		}
		return m
	}
	l := &LSTM{
		cfg: cfg,
		wi:  mat(h, in), wf: mat(h, in), wo: mat(h, in), wg: mat(h, in),
		ui: mat(h, h), uf: mat(h, h), uo: mat(h, h), ug: mat(h, h),
		bi: make([]float64, h), bf: make([]float64, h), bo: make([]float64, h), bg: make([]float64, h),
		wy: make([]float64, h),
	}
	for i := 0; i < h; i++ {
		l.bf[i] = 1
		l.wy[i] = rng.NormFloat64() * scale
	}
	return l, nil
}

// trace captures the per-step activations needed by BPTT.
type trace struct {
	x          [][]float64
	i, f, o, g [][]float64
	c, h       [][]float64
	tanhC      [][]float64
}

// forward runs the network over seq and returns the prediction plus the
// activation trace.
func (l *LSTM) forward(seq [][]float64) (float64, *trace) {
	h := l.cfg.HiddenDim
	T := len(seq)
	tr := &trace{
		x: seq,
		i: make([][]float64, T), f: make([][]float64, T),
		o: make([][]float64, T), g: make([][]float64, T),
		c: make([][]float64, T), h: make([][]float64, T),
		tanhC: make([][]float64, T),
	}
	prevH := make([]float64, h)
	prevC := make([]float64, h)
	for t := 0; t < T; t++ {
		it := make([]float64, h)
		ft := make([]float64, h)
		ot := make([]float64, h)
		gt := make([]float64, h)
		ct := make([]float64, h)
		ht := make([]float64, h)
		tc := make([]float64, h)
		for j := 0; j < h; j++ {
			ai := l.bi[j] + dot(l.wi[j], seq[t]) + dot(l.ui[j], prevH)
			af := l.bf[j] + dot(l.wf[j], seq[t]) + dot(l.uf[j], prevH)
			ao := l.bo[j] + dot(l.wo[j], seq[t]) + dot(l.uo[j], prevH)
			ag := l.bg[j] + dot(l.wg[j], seq[t]) + dot(l.ug[j], prevH)
			it[j] = sigmoid(ai)
			ft[j] = sigmoid(af)
			ot[j] = sigmoid(ao)
			gt[j] = math.Tanh(ag)
			ct[j] = ft[j]*prevC[j] + it[j]*gt[j]
			tc[j] = math.Tanh(ct[j])
			ht[j] = ot[j] * tc[j]
		}
		tr.i[t], tr.f[t], tr.o[t], tr.g[t] = it, ft, ot, gt
		tr.c[t], tr.h[t], tr.tanhC[t] = ct, ht, tc
		prevH, prevC = ht, ct
	}
	y := l.by + dot(l.wy, prevH)
	return y, tr
}

// Predict returns the regression output for a sequence of feature vectors.
// Sequences shorter than 1 step return 0.
func (l *LSTM) Predict(seq [][]float64) float64 {
	if len(seq) == 0 {
		return 0
	}
	y, _ := l.forward(seq)
	return y
}

// Train performs one online SGD step on (seq, target) with squared-error
// loss and returns the pre-update prediction error (prediction - target).
func (l *LSTM) Train(seq [][]float64, target float64) float64 {
	if len(seq) == 0 {
		return 0
	}
	y, tr := l.forward(seq)
	dy := y - target

	h := l.cfg.HiddenDim
	in := l.cfg.InputDim
	T := len(seq)

	gwi, gwf, gwo, gwg := zeros(h, in), zeros(h, in), zeros(h, in), zeros(h, in)
	gui, guf, guo, gug := zeros(h, h), zeros(h, h), zeros(h, h), zeros(h, h)
	gbi, gbf, gbo, gbg := make([]float64, h), make([]float64, h), make([]float64, h), make([]float64, h)
	gwy := make([]float64, h)

	dh := make([]float64, h)
	dc := make([]float64, h)
	for j := 0; j < h; j++ {
		gwy[j] = dy * tr.h[T-1][j]
		dh[j] = dy * l.wy[j]
	}
	gby := dy

	for t := T - 1; t >= 0; t-- {
		prevH := make([]float64, h)
		prevC := make([]float64, h)
		if t > 0 {
			prevH, prevC = tr.h[t-1], tr.c[t-1]
		}
		dhPrev := make([]float64, h)
		dcPrev := make([]float64, h)
		for j := 0; j < h; j++ {
			do := dh[j] * tr.tanhC[t][j]
			dcj := dc[j] + dh[j]*tr.o[t][j]*(1-tr.tanhC[t][j]*tr.tanhC[t][j])
			di := dcj * tr.g[t][j]
			dg := dcj * tr.i[t][j]
			df := dcj * prevC[j]
			dcPrev[j] = dcj * tr.f[t][j]

			dai := di * tr.i[t][j] * (1 - tr.i[t][j])
			daf := df * tr.f[t][j] * (1 - tr.f[t][j])
			dao := do * tr.o[t][j] * (1 - tr.o[t][j])
			dag := dg * (1 - tr.g[t][j]*tr.g[t][j])

			for k := 0; k < in; k++ {
				x := tr.x[t][k]
				gwi[j][k] += dai * x
				gwf[j][k] += daf * x
				gwo[j][k] += dao * x
				gwg[j][k] += dag * x
			}
			for k := 0; k < h; k++ {
				ph := prevH[k]
				gui[j][k] += dai * ph
				guf[j][k] += daf * ph
				guo[j][k] += dao * ph
				gug[j][k] += dag * ph
				dhPrev[k] += dai*l.ui[j][k] + daf*l.uf[j][k] + dao*l.uo[j][k] + dag*l.ug[j][k]
			}
			gbi[j] += dai
			gbf[j] += daf
			gbo[j] += dao
			gbg[j] += dag
		}
		dh, dc = dhPrev, dcPrev
	}

	lr := l.cfg.LearningRate
	clip := l.cfg.Clip
	applyMat(l.wi, gwi, lr, clip)
	applyMat(l.wf, gwf, lr, clip)
	applyMat(l.wo, gwo, lr, clip)
	applyMat(l.wg, gwg, lr, clip)
	applyMat(l.ui, gui, lr, clip)
	applyMat(l.uf, guf, lr, clip)
	applyMat(l.uo, guo, lr, clip)
	applyMat(l.ug, gug, lr, clip)
	applyVec(l.bi, gbi, lr, clip)
	applyVec(l.bf, gbf, lr, clip)
	applyVec(l.bo, gbo, lr, clip)
	applyVec(l.bg, gbg, lr, clip)
	applyVec(l.wy, gwy, lr, clip)
	l.by -= lr * clipVal(gby, clip)
	l.steps++
	return dy
}

// Steps returns the number of online training steps performed.
func (l *LSTM) Steps() int { return l.steps }

// MemoryBytes estimates the model's resident size (§4.5: ~25KB per local
// predictor).
func (l *LSTM) MemoryBytes() int {
	h, in := l.cfg.HiddenDim, l.cfg.InputDim
	params := 4*(h*in+h*h+h) + h + 1
	return params * 8
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func zeros(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

func clipVal(g, clip float64) float64 {
	if clip <= 0 {
		return g
	}
	if g > clip {
		return clip
	}
	if g < -clip {
		return -clip
	}
	return g
}

func applyMat(w, g [][]float64, lr, clip float64) {
	for i := range w {
		for j := range w[i] {
			w[i][j] -= lr * clipVal(g[i][j], clip)
		}
	}
}

func applyVec(w, g []float64, lr, clip float64) {
	for i := range w {
		w[i] -= lr * clipVal(g[i], clip)
	}
}
