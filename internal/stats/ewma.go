package stats

// EWMA is an exponentially weighted moving average, the short-horizon
// predictor in Coach's two-level local contention prediction (paper §3.4,
// §3.6: updated every 20-second window with alpha = 0.5).
//
// The zero value is not ready; construct with NewEWMA. After the first
// observation the prediction equals that observation.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
// Larger alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one observation into the average.
func (e *EWMA) Observe(x float64) {
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Predict returns the current smoothed value, the forecast for the next
// interval. Before any observation it returns 0.
func (e *EWMA) Predict() float64 { return e.value }

// Primed reports whether at least one observation has been folded in.
func (e *EWMA) Primed() bool { return e.primed }
