// Package stats provides the statistical primitives the Coach reproduction
// relies on: percentiles, histograms, CDFs, violin summaries (paper Fig. 11),
// correlation (Fig. 6) and exponentially weighted moving averages (§3.4).
//
// Everything is implemented from scratch on the standard library so the
// module stays dependency-free and deterministic.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
// The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
// Use it to avoid repeated sorting when extracting several percentiles.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Range returns the spread between the hi-th and lo-th percentiles of xs
// (e.g., P95-P5), the paper's "utilization range" metric (§2.3, Fig. 6).
func Range(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, hi) - PercentileSorted(sorted, lo)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the lengths differ, are < 2, or either side has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx2, dy2 float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		num += dx * dy
		dx2 += dx * dx
		dy2 += dy * dy
	}
	if dx2 == 0 || dy2 == 0 {
		return 0
	}
	return num / math.Sqrt(dx2*dy2)
}

// Violin is the five-plus-one number summary the paper uses to draw the
// savings violins in Fig. 11: min, P25, median, P75, max and mean.
type Violin struct {
	Min, P25, Median, P75, Max, Mean float64
	N                                int
}

// NewViolin summarizes xs. The zero Violin describes an empty sample.
func NewViolin(xs []float64) Violin {
	if len(xs) == 0 {
		return Violin{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Violin{
		Min:    sorted[0],
		P25:    PercentileSorted(sorted, 25),
		Median: PercentileSorted(sorted, 50),
		P75:    PercentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}
}

// CDFPoint is one point of an empirical CDF: Fraction of samples <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs evaluated at the given thresholds.
// Thresholds must be in ascending order; each output point reports the
// fraction of samples less than or equal to the threshold.
func CDF(xs []float64, thresholds []float64) []CDFPoint {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(thresholds))
	for i, t := range thresholds {
		// count of samples <= t
		n := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		frac := 0.0
		if len(sorted) > 0 {
			frac = float64(n) / float64(len(sorted))
		}
		out[i] = CDFPoint{Value: t, Fraction: frac}
	}
	return out
}

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// outside the range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BucketUp rounds x up to the next multiple of step (e.g., 17.3 -> 20 with
// step 5), the paper's conservative 5%-bucket rounding (§2.3, §3.3).
// Non-positive steps return x unchanged.
func BucketUp(x, step float64) float64 {
	if step <= 0 {
		return x
	}
	b := math.Ceil(x/step-1e-9) * step
	if b < 0 {
		return 0
	}
	return b
}
