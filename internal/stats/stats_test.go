package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean of 1,2,3 != 2")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty != 0")
	}
}

func TestSum(t *testing.T) {
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Error("sum wrong")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 4) {
		t.Errorf("variance = %v, want 4", Variance(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Errorf("stddev = %v, want 2", StdDev(xs))
	}
	if Variance([]float64{5}) != 0 {
		t.Error("variance of single sample != 0")
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40},
		{10, 14}, // interpolated: rank 0.4 between 10 and 20
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		xs := make([]float64, 1+rng.Intn(30))
		for j := range xs {
			xs[j] = rng.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		p := rng.Float64() * 100
		if !almost(Percentile(xs, p), PercentileSorted(sorted, p)) {
			t.Fatalf("mismatch at p=%v", p)
		}
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Error("max/min wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty max/min != 0")
	}
}

func TestRange(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	if got := Range(xs, 5, 95); !almost(got, 90) {
		t.Errorf("P95-P5 of 0..100 = %v, want 90", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if !almost(Pearson(x, y), 1) {
		t.Error("perfect positive correlation != 1")
	}
	neg := []float64{8, 6, 4, 2}
	if !almost(Pearson(x, neg), -1) {
		t.Error("perfect negative correlation != -1")
	}
	if Pearson(x, []float64{5, 5, 5, 5}) != 0 {
		t.Error("zero-variance side must give 0")
	}
	if Pearson(x, []float64{1, 2}) != 0 {
		t.Error("length mismatch must give 0")
	}
}

func TestViolinOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	v := NewViolin(xs)
	if !(v.Min <= v.P25 && v.P25 <= v.Median && v.Median <= v.P75 && v.P75 <= v.Max) {
		t.Errorf("violin ordering violated: %+v", v)
	}
	if v.N != 200 {
		t.Errorf("N = %d", v.N)
	}
	if NewViolin(nil).N != 0 {
		t.Error("empty violin N != 0")
	}
}

// Property: violin quantile ordering holds for arbitrary input.
func TestViolinOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true // NaN ordering undefined; skip
			}
		}
		v := NewViolin(xs)
		if len(xs) == 0 {
			return v == Violin{}
		}
		return v.Min <= v.P25 && v.P25 <= v.Median && v.Median <= v.P75 && v.P75 <= v.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	pts := CDF(xs, []float64{0, 2, 5, 10})
	wants := []float64{0, 0.4, 1, 1}
	for i, p := range pts {
		if !almost(p.Fraction, wants[i]) {
			t.Errorf("CDF at %v = %v, want %v", p.Value, p.Fraction, wants[i])
		}
	}
}

// Property: CDF fractions are monotone non-decreasing for sorted thresholds.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, ts []float64) bool {
		for _, x := range append(append([]float64{}, xs...), ts...) {
			if math.IsNaN(x) {
				return true
			}
		}
		sort.Float64s(ts)
		pts := CDF(xs, ts)
		for i := 1; i < len(pts); i++ {
			if pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.9, 10, 100, -5} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// -5 clamps to bin 0; 10 and 100 clamp to bin 4.
	if h.Counts[0] != 3 {
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 {
		t.Errorf("bin 4 = %d, want 3", h.Counts[4])
	}
	var sum float64
	for i := range h.Counts {
		sum += h.Fraction(i)
	}
	if !almost(sum, 1) {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestBucketUpPaperExample(t *testing.T) {
	// Paper: "rounded to 5% buckets (e.g., 17.3 -> 20.0%)".
	if got := BucketUp(17.3, 5); got != 20 {
		t.Errorf("BucketUp(17.3, 5) = %v, want 20", got)
	}
	if got := BucketUp(20, 5); got != 20 {
		t.Errorf("BucketUp(20, 5) = %v, want 20 (already on bucket)", got)
	}
	if got := BucketUp(0.17, 0.05); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("BucketUp(0.17, 0.05) = %v, want 0.20", got)
	}
	if got := BucketUp(3, 0); got != 3 {
		t.Errorf("zero step must return input, got %v", got)
	}
}

// Property: BucketUp(x) >= x, is a multiple of step and is idempotent.
func TestBucketUpProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1) // [0, 1)
		b := BucketUp(x, 0.05)
		if b < x-1e-9 {
			return false
		}
		steps := b / 0.05
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			return false
		}
		return math.Abs(BucketUp(b, 0.05)-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAConstantInput(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Error("new EWMA must not be primed")
	}
	for i := 0; i < 10; i++ {
		e.Observe(0.7)
	}
	if !almost(e.Predict(), 0.7) {
		t.Errorf("EWMA of constant 0.7 = %v", e.Predict())
	}
}

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0.3)
	if e.Predict() != 0.3 {
		t.Errorf("first observation must set the value, got %v", e.Predict())
	}
}

func TestEWMAAlphaOneTracksInput(t *testing.T) {
	e := NewEWMA(1)
	e.Observe(0.1)
	e.Observe(0.9)
	if e.Predict() != 0.9 {
		t.Errorf("alpha=1 must track last input, got %v", e.Predict())
	}
}

func TestEWMAInvalidAlphaDefaults(t *testing.T) {
	e := NewEWMA(-3)
	e.Observe(1)
	e.Observe(0)
	if !almost(e.Predict(), 0.5) {
		t.Errorf("invalid alpha should default to 0.5: got %v", e.Predict())
	}
}

func TestEWMAConvergesToNewLevel(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0)
	for i := 0; i < 30; i++ {
		e.Observe(1)
	}
	if e.Predict() < 0.999 {
		t.Errorf("EWMA failed to converge: %v", e.Predict())
	}
}
