// Package timeseries models the 5-minute resource-utilization telemetry the
// paper's characterization and scheduling are built on (§2 methodology:
// maximum utilization captured at 5-minute intervals) and the time-window
// aggregation Coach schedules with (§3.3).
package timeseries

import (
	"fmt"
	"math"

	"github.com/coach-oss/coach/internal/stats"
)

// Telemetry granularity constants. The platform's long-term store keeps
// one maximum-utilization sample per 5 minutes.
const (
	SampleMinutes  = 5
	SamplesPerHour = 60 / SampleMinutes
	SamplesPerDay  = 24 * SamplesPerHour
)

// Series is a sequence of 5-minute utilization samples, each the maximum
// utilization observed in its interval, expressed as a fraction of the
// VM's allocation in [0, 1]. Sample 0 is the first interval after the VM's
// allocation time.
type Series []float64

// Clone returns a copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Max returns the lifetime maximum utilization, 0 for an empty series.
func (s Series) Max() float64 { return stats.Max(s) }

// Mean returns the lifetime mean utilization.
func (s Series) Mean() float64 { return stats.Mean(s) }

// Percentile returns the p-th percentile of the samples.
func (s Series) Percentile(p float64) float64 { return stats.Percentile(s, p) }

// UtilRange returns the P(hi) - P(lo) spread, the paper's utilization
// range metric (Fig. 6 uses P95-P5).
func (s Series) UtilRange(lo, hi float64) float64 { return stats.Range(s, lo, hi) }

// Days returns the number of complete days covered by the series.
func (s Series) Days() int { return len(s) / SamplesPerDay }

// Day returns the samples of day d (0-based). The final, possibly partial,
// day is returned as-is; an out-of-range day yields an empty slice.
func (s Series) Day(d int) Series {
	lo := d * SamplesPerDay
	if lo >= len(s) {
		return nil
	}
	hi := lo + SamplesPerDay
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// Windows describes how each day is split into equal time windows
// (paper Fig. 7 uses 3x8h; Coach's default configuration is 6x4h, §3.3).
type Windows struct {
	PerDay int
}

// Hours returns the length of each window in hours.
func (w Windows) Hours() float64 { return 24 / float64(w.PerDay) }

// Samples returns the number of 5-minute samples per window.
func (w Windows) Samples() int { return SamplesPerDay / w.PerDay }

// Validate reports an error unless the window count divides a day evenly
// at the 5-minute sample granularity.
func (w Windows) Validate() error {
	if w.PerDay < 1 || w.PerDay > SamplesPerDay {
		return fmt.Errorf("timeseries: %d windows per day out of range [1,%d]", w.PerDay, SamplesPerDay)
	}
	if SamplesPerDay%w.PerDay != 0 {
		return fmt.Errorf("timeseries: %d windows per day does not divide %d samples", w.PerDay, SamplesPerDay)
	}
	return nil
}

func (w Windows) String() string {
	return fmt.Sprintf("%dx%gh", w.PerDay, w.Hours())
}

// CommonWindowConfigs are the per-day window splits studied in Fig. 11:
// 1x24h, 2x12h, 4x6h, 6x4h, 8x3h, 12x2h and 24x1h.
func CommonWindowConfigs() []Windows {
	return []Windows{{1}, {2}, {4}, {6}, {8}, {12}, {24}}
}

// WindowOf returns the day index and window index of sample i.
func (w Windows) WindowOf(i int) (day, window int) {
	day = i / SamplesPerDay
	window = (i % SamplesPerDay) / w.Samples()
	return day, window
}

// DayWindowMax returns, for day d, the maximum utilization in each of the
// w.PerDay windows (the paper's "current time window max", Fig. 7).
// Windows with no samples (partial final day) report NaN.
func (s Series) DayWindowMax(d int, w Windows) []float64 {
	day := s.Day(d)
	out := make([]float64, w.PerDay)
	per := w.Samples()
	for win := 0; win < w.PerDay; win++ {
		lo := win * per
		if lo >= len(day) {
			out[win] = math.NaN()
			continue
		}
		hi := lo + per
		if hi > len(day) {
			hi = len(day)
		}
		out[win] = stats.Max(day[lo:hi])
	}
	return out
}

// LifetimeWindowMax returns, per window, the maximum utilization across
// every day of the series (the paper's "lifetime time window max", Fig. 7).
func (s Series) LifetimeWindowMax(w Windows) []float64 {
	out := make([]float64, w.PerDay)
	days := s.Days()
	if days == 0 && len(s) > 0 {
		days = 1
	}
	for win := range out {
		out[win] = math.NaN()
	}
	for d := 0; d < days; d++ {
		dm := s.DayWindowMax(d, w)
		for win, v := range dm {
			if math.IsNaN(v) {
				continue
			}
			if math.IsNaN(out[win]) || v > out[win] {
				out[win] = v
			}
		}
	}
	for win, v := range out {
		if math.IsNaN(v) {
			out[win] = 0
		}
	}
	return out
}

// WindowPercentile returns, per window, the p-th percentile of all samples
// falling in that window across every day. Coach uses this (e.g., P95) to
// size the guaranteed (PA) portion per formula (1) of §3.3.
func (s Series) WindowPercentile(w Windows, p float64) []float64 {
	buckets := make([][]float64, w.PerDay)
	per := w.Samples()
	for i, v := range s {
		win := (i % SamplesPerDay) / per
		buckets[win] = append(buckets[win], v)
	}
	out := make([]float64, w.PerDay)
	for win, xs := range buckets {
		out[win] = stats.Percentile(xs, p)
	}
	return out
}

// PeakBucket is the 5% rounding the paper applies before comparing window
// maxima ("rounded to 5% buckets (e.g., 17.3 -> 20.0%)", Fig. 7).
const PeakBucket = 0.05

// PeaksValleys applies the paper's peak/valley definition (§2.3, Fig. 8)
// to day d: a VM has a peak (and valley) that day if the difference between
// the bucketed window maxima is at least one 5% bucket. Every window whose
// bucketed maximum equals the day's maximum (minimum) is a peak (valley).
// has is false when the day's utilization stays within one bucket, i.e.,
// the VM counts as "None" for that day.
func (s Series) PeaksValleys(d int, w Windows) (peaks, valleys []bool, has bool) {
	wm := s.DayWindowMax(d, w)
	peaks = make([]bool, w.PerDay)
	valleys = make([]bool, w.PerDay)
	hi, lo := math.Inf(-1), math.Inf(1)
	for _, v := range wm {
		if math.IsNaN(v) {
			continue
		}
		b := stats.BucketUp(v, PeakBucket)
		if b > hi {
			hi = b
		}
		if b < lo {
			lo = b
		}
	}
	if math.IsInf(hi, -1) || hi-lo < PeakBucket-1e-12 {
		return peaks, valleys, false
	}
	for win, v := range wm {
		if math.IsNaN(v) {
			continue
		}
		b := stats.BucketUp(v, PeakBucket)
		if b >= hi-1e-12 {
			peaks[win] = true
		}
		if b <= lo+1e-12 {
			valleys[win] = true
		}
	}
	return peaks, valleys, true
}

// WindowSavings returns, per window of day d, the utilization fraction
// saved by allocating the day's window maximum instead of the lifetime
// maximum (Fig. 10's metric): saved[t] = lifetimeMax - windowMax[t],
// clamped at zero.
func (s Series) WindowSavings(d int, w Windows, lifetimeMax float64) []float64 {
	wm := s.DayWindowMax(d, w)
	out := make([]float64, len(wm))
	for i, v := range wm {
		if math.IsNaN(v) {
			continue
		}
		if sv := lifetimeMax - v; sv > 0 {
			out[i] = sv
		}
	}
	return out
}
