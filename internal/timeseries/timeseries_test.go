package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mkSeries builds a days-long series whose value at each sample is
// f(day, sampleOfDay).
func mkSeries(days int, f func(day, sample int) float64) Series {
	s := make(Series, days*SamplesPerDay)
	for d := 0; d < days; d++ {
		for i := 0; i < SamplesPerDay; i++ {
			s[d*SamplesPerDay+i] = f(d, i)
		}
	}
	return s
}

func TestConstants(t *testing.T) {
	if SamplesPerHour != 12 || SamplesPerDay != 288 {
		t.Fatalf("5-minute telemetry constants wrong: %d %d", SamplesPerHour, SamplesPerDay)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestBasicAggregates(t *testing.T) {
	s := Series{0.1, 0.5, 0.3}
	if s.Max() != 0.5 || math.Abs(s.Mean()-0.3) > 1e-12 {
		t.Errorf("max/mean wrong: %v %v", s.Max(), s.Mean())
	}
}

func TestDaysAndDay(t *testing.T) {
	s := mkSeries(2, func(d, i int) float64 { return float64(d) })
	if s.Days() != 2 {
		t.Errorf("Days = %d", s.Days())
	}
	if len(s.Day(0)) != SamplesPerDay || s.Day(1)[0] != 1 {
		t.Error("Day slicing wrong")
	}
	if s.Day(5) != nil {
		t.Error("out-of-range day must be nil")
	}
	// Partial final day.
	partial := append(s.Clone(), 0.9)
	if got := partial.Day(2); len(got) != 1 || got[0] != 0.9 {
		t.Errorf("partial day = %v", got)
	}
}

func TestWindowsValidate(t *testing.T) {
	for _, w := range CommonWindowConfigs() {
		if err := w.Validate(); err != nil {
			t.Errorf("%v: %v", w, err)
		}
	}
	if err := (Windows{PerDay: 0}).Validate(); err == nil {
		t.Error("0 windows must be invalid")
	}
	if err := (Windows{PerDay: 7}).Validate(); err == nil {
		t.Error("7 windows does not divide 288 samples: must be invalid")
	}
}

func TestWindowsHoursSamples(t *testing.T) {
	w := Windows{PerDay: 6}
	if w.Hours() != 4 || w.Samples() != 48 {
		t.Errorf("6 windows: hours=%v samples=%d", w.Hours(), w.Samples())
	}
	if w.String() != "6x4h" {
		t.Errorf("String = %q", w.String())
	}
}

func TestWindowOf(t *testing.T) {
	w := Windows{PerDay: 3} // 8h windows, 96 samples each
	day, win := w.WindowOf(0)
	if day != 0 || win != 0 {
		t.Errorf("WindowOf(0) = %d,%d", day, win)
	}
	day, win = w.WindowOf(SamplesPerDay + 96)
	if day != 1 || win != 1 {
		t.Errorf("WindowOf(day1+96) = %d,%d", day, win)
	}
}

func TestDayWindowMax(t *testing.T) {
	// Day 0: window 0 peaks at 0.8, window 1 flat 0.2, window 2 flat 0.4.
	s := mkSeries(1, func(d, i int) float64 {
		switch {
		case i == 10:
			return 0.8
		case i < 96:
			return 0.1
		case i < 192:
			return 0.2
		default:
			return 0.4
		}
	})
	wm := s.DayWindowMax(0, Windows{PerDay: 3})
	if wm[0] != 0.8 || wm[1] != 0.2 || wm[2] != 0.4 {
		t.Errorf("DayWindowMax = %v", wm)
	}
}

func TestDayWindowMaxPartialDayNaN(t *testing.T) {
	s := make(Series, 10) // much less than one window
	wm := s.DayWindowMax(0, Windows{PerDay: 3})
	if math.IsNaN(wm[0]) {
		t.Error("window 0 has samples, must not be NaN")
	}
	if !math.IsNaN(wm[1]) || !math.IsNaN(wm[2]) {
		t.Error("empty windows must be NaN")
	}
}

func TestLifetimeWindowMax(t *testing.T) {
	// Two days: day 0 peaks 0.5 in window 0; day 1 peaks 0.7 in window 0.
	s := mkSeries(2, func(d, i int) float64 {
		if i == 0 {
			return 0.5 + 0.2*float64(d)
		}
		return 0.1
	})
	lm := s.LifetimeWindowMax(Windows{PerDay: 3})
	if lm[0] != 0.7 {
		t.Errorf("lifetime window 0 max = %v, want 0.7", lm[0])
	}
	if lm[1] != 0.1 || lm[2] != 0.1 {
		t.Errorf("lifetime maxes = %v", lm)
	}
}

// Property: lifetime window max dominates every day's window max.
func TestLifetimeWindowMaxDominatesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		days := 1 + rng.Intn(4)
		s := mkSeries(days, func(d, i int) float64 { return rng.Float64() })
		w := CommonWindowConfigs()[rng.Intn(7)]
		lm := s.LifetimeWindowMax(w)
		for d := 0; d < days; d++ {
			dm := s.DayWindowMax(d, w)
			for win := range dm {
				if !math.IsNaN(dm[win]) && dm[win] > lm[win]+1e-12 {
					t.Fatalf("day %d window %d max %v > lifetime %v", d, win, dm[win], lm[win])
				}
			}
		}
	}
}

// Property: a window's percentile never exceeds its lifetime max.
func TestWindowPercentileBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		s := mkSeries(2, func(d, i int) float64 { return rng.Float64() })
		w := Windows{PerDay: 6}
		pct := s.WindowPercentile(w, 95)
		lm := s.LifetimeWindowMax(w)
		for win := range pct {
			if pct[win] > lm[win]+1e-12 {
				t.Fatalf("window %d P95 %v > max %v", win, pct[win], lm[win])
			}
		}
	}
}

func TestWindowPercentileConstantSeries(t *testing.T) {
	s := mkSeries(1, func(d, i int) float64 { return 0.42 })
	for _, p := range s.WindowPercentile(Windows{PerDay: 6}, 95) {
		if math.Abs(p-0.42) > 1e-9 {
			t.Fatalf("constant series percentile = %v", p)
		}
	}
}

func TestPeaksValleysFlatSeries(t *testing.T) {
	s := mkSeries(1, func(d, i int) float64 { return 0.33 })
	_, _, has := s.PeaksValleys(0, Windows{PerDay: 6})
	if has {
		t.Error("flat series must have no peaks/valleys (within one 5% bucket)")
	}
}

func TestPeaksValleysDetection(t *testing.T) {
	// Window 2 peaks at 0.6; everything else at 0.1.
	w := Windows{PerDay: 6}
	s := mkSeries(1, func(d, i int) float64 {
		if i/w.Samples() == 2 {
			return 0.6
		}
		return 0.1
	})
	peaks, valleys, has := s.PeaksValleys(0, w)
	if !has {
		t.Fatal("peaks must be detected")
	}
	if !peaks[2] {
		t.Error("window 2 must be a peak")
	}
	for win, p := range peaks {
		if win != 2 && p {
			t.Errorf("window %d wrongly a peak", win)
		}
	}
	for win, v := range valleys {
		if win == 2 && v {
			t.Error("peak window cannot be a valley")
		}
		if win != 2 && !v {
			t.Errorf("window %d must be a valley", win)
		}
	}
}

func TestPeaksValleysWithinBucketIsNone(t *testing.T) {
	// 0.17 vs 0.19 both bucket to 0.20: no peak.
	w := Windows{PerDay: 2}
	s := mkSeries(1, func(d, i int) float64 {
		if i < w.Samples() {
			return 0.17
		}
		return 0.19
	})
	_, _, has := s.PeaksValleys(0, w)
	if has {
		t.Error("window maxima within one bucket must count as None")
	}
}

func TestWindowSavings(t *testing.T) {
	// Lifetime max 0.75; windows at 0.30, 0.75, 0.55 -> savings 0.45, 0, 0.20
	// (the paper's §2.3 worked example).
	w := Windows{PerDay: 3}
	s := mkSeries(1, func(d, i int) float64 {
		switch i / w.Samples() {
		case 0:
			return 0.30
		case 1:
			return 0.75
		default:
			return 0.55
		}
	})
	sv := s.WindowSavings(0, w, 0.75)
	want := []float64{0.45, 0, 0.20}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-12 {
			t.Errorf("savings[%d] = %v, want %v", i, sv[i], want[i])
		}
	}
}

// Property: savings are non-negative and bounded by the lifetime max.
func TestWindowSavingsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mkSeries(1, func(d, i int) float64 { return rng.Float64() })
		lm := s.Max()
		for _, sv := range s.WindowSavings(0, Windows{PerDay: 6}, lm) {
			if sv < 0 || sv > lm+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUtilRange(t *testing.T) {
	s := make(Series, 100)
	for i := range s {
		s[i] = float64(i) / 100
	}
	r := s.UtilRange(5, 95)
	if r < 0.85 || r > 0.95 {
		t.Errorf("P95-P5 of ramp = %v", r)
	}
}
