module github.com/coach-oss/coach

go 1.21
