// Scheduling policy comparison: replay one trace against the same fixed
// fleet under all four oversubscription policies (None, Single, Coach,
// AggrCoach) and compare hosted capacity against performance violations —
// the trade-off of the paper's Fig. 20.
package main

import (
	"fmt"
	"log"
	"os"

	coach "github.com/coach-oss/coach"
)

func main() {
	cfg := coach.DefaultTraceConfig()
	cfg.VMs = 1500
	cfg.Subscriptions = 80
	tr, err := coach.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately tight fleet: policies differentiate by how many of
	// the arriving VMs they manage to host.
	fleet := coach.NewFleet(coach.DefaultClusters(1))
	fmt.Printf("fleet: %d servers, capacity %v\n\n",
		len(fleet.Servers), fleet.TotalCapacity())

	table := &coach.Table{
		Title: "Oversubscription policy comparison",
		Headers: []string{"policy", "placed", "placed %", "+capacity vs None %",
			"CPU viol %", "mem viol %"},
	}
	var nonePlaced int
	for _, p := range []coach.PolicyKind{
		coach.PolicyNone, coach.PolicySingle, coach.PolicyCoach, coach.PolicyAggrCoach,
	} {
		simCfg := coach.SimConfigForPolicy(p)
		simCfg.TrainUpTo = tr.Horizon / 2
		res, err := coach.Simulate(tr, fleet, simCfg)
		if err != nil {
			log.Fatal(err)
		}
		if p == coach.PolicyNone {
			nonePlaced = res.Placed
		}
		gain := 0.0
		if nonePlaced > 0 {
			gain = 100 * float64(res.Placed-nonePlaced) / float64(nonePlaced)
		}
		table.AddRow(p.String(), res.Placed, 100*res.PlacedFrac(), gain,
			100*res.CPUViolationFrac(), 100*res.MemViolationFrac())
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
