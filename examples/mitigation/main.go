// Fleet-scale contention mitigation: a synthetic VM trace replays against
// a fleet whose servers each run the memory data plane — the hypervisor's
// oversubscribed pool plus Coach's oversubscription agent — under each of
// the four mitigation policies of §4.4 (None, Trim, Extend, Migrate).
//
// The pool is deliberately sized small (2% of server memory) and the
// scheduler uses AggrCoach's P50 guaranteed portions, so working sets
// routinely spill into the oversubscribed region and exhaust it. Without
// an agent the hypervisor evicts blindly and steals working-set pages
// (paging storms); the agent instead trims known-cold memory first and
// escalates to extending the pool or live-migrating the heaviest VM.
//
// A fifth ladder, Migrate+CrossShard, lets completed live migrations
// escape their home cluster through the simulator's sample-boundary
// exchange: the unified migration engine (docs/DESIGN.md §10) moves the
// scheduler's capacity bookkeeping and the VM's memory together, lands
// pre-copied pages resident, and only targets pools that can absorb the
// incoming working set.
//
// This is the paper's Fig. 21 storyline at fleet scale. For the original
// three-VM single-server storyline, run the fig21 experiment:
//
//	go run ./cmd/coach-experiments -run fig21
package main

import (
	"fmt"
	"log"

	coach "github.com/coach-oss/coach"
)

func main() {
	// A small two-week trace and a ten-cluster fleet.
	traceCfg := coach.DefaultTraceConfig()
	traceCfg.VMs = 300
	traceCfg.Subscriptions = 30
	tr, err := coach.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	// Ten single-server clusters, with C1's server swapped for a
	// memory-rich configuration: its oversubscribed pool (2% of server
	// memory, like every other pool) is the only one in the fleet large
	// enough to absorb a migrated working set, so it is where the
	// cross-shard exchange can land escapes.
	clusters := coach.DefaultClusters(1)
	clusters[0].Spec.Capacity[coach.Memory] = 4096
	clusters[0].Spec.Capacity[coach.CPU] = 320
	fleet := coach.NewFleet(clusters)

	// The mitigation policy never affects prediction: train the model once
	// through the platform and share it across the four runs.
	platformCfg := coach.DefaultPlatformConfig()
	platformCfg.Policy = coach.PolicyAggrCoach
	platformCfg.Percentile = 50
	platform, err := coach.NewPlatform(fleet, platformCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Train(tr, tr.Horizon/2); err != nil {
		log.Fatal(err)
	}

	ladders := []struct {
		name       string
		policy     coach.MitigationPolicy
		crossShard bool
	}{
		{"None", coach.MitigateNone, false},
		{"Trim", coach.MitigateTrim, false},
		{"Extend", coach.MitigateExtend, false},
		{"Migrate", coach.MitigateMigrate, false},
		{"Migrate+CrossShard", coach.MitigateMigrate, true},
	}
	fmt.Println("ladder              contentions  trims  extends  migrations  landed(s/x/f)  trimmed-GB  extended-GB  migrated-GB  hard-fault-GB  stolen-GB")
	for _, l := range ladders {
		cfg := coach.SimConfigForPolicy(coach.PolicyAggrCoach)
		cfg.TrainUpTo = tr.Horizon / 2
		cfg.Model = platform.Model()
		cfg.DataPlane = true
		cfg.MitigationPolicy = l.policy
		cfg.MitigationMode = coach.Reactive
		cfg.DataPlanePoolFrac = 0.02
		cfg.DataPlaneUnallocFrac = 0.02
		cfg.CrossShardMigration = l.crossShard
		res, err := coach.Simulate(tr, fleet, cfg)
		if err != nil {
			log.Fatal(err)
		}
		dp := res.DataPlane
		fmt.Printf("%-18s %12d  %5d  %7d  %10d  %6d/%d/%d      %10.1f  %11.1f  %11.1f  %13.1f  %9.1f\n",
			l.name, dp.Counters.Contentions, dp.Counters.Trims, dp.Counters.Extends,
			dp.Counters.Migrations, dp.SameShardMigrations, dp.CrossShardMigrations,
			dp.FailedMigrations, dp.Totals.TrimmedGB, dp.Totals.ExtendedGB,
			dp.Totals.MigratedGB, dp.Totals.HardFaultGB, dp.Totals.StolenGB)
	}
	fmt.Println("\nNone pays for pool exhaustion with stolen working-set memory (paging")
	fmt.Println("storms); Trim converts blind evictions into targeted cold-page trims;")
	fmt.Println("Extend and Migrate additionally resolve deficits trimming cannot cover;")
	fmt.Println("cross-shard migration (landed s/x/f = same-shard/cross-shard/failed)")
	fmt.Println("re-homes VMs onto clusters whose pools can actually absorb them.")
}
