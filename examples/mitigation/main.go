// Contention mitigation: three CoachVMs share an oversubscribed memory
// pool; one of them (Video Conf) uses more memory than predicted, causing
// two contentions. The server's oversubscription agent detects the
// pressure and mitigates it — trim first, then extending the pool — while
// the colocated latency-sensitive Cache VM keeps serving.
//
// This is the paper's Fig. 21 storyline with the Extend-Proactive policy.
package main

import (
	"fmt"
	"log"

	coach "github.com/coach-oss/coach"
)

func main() {
	// A server with an 8GB oversubscribed pool and 8GB of unallocated
	// memory the agent may claim.
	cfg := coach.DefaultServerConfig(8, 8)
	cfg.Agent.Policy = coach.MitigateExtend
	cfg.Agent.Mode = coach.Proactive
	server, err := coach.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Three 8GB CoachVMs: Cache and KV-Store with 3GB guaranteed, the
	// offending Video Conf VM with only 1GB guaranteed.
	type guest struct {
		name string
		vm   *coach.VMMemory
	}
	var guests []guest
	for i, g := range []struct {
		name string
		pa   float64
	}{{"Cache", 3}, {"KV-Store", 3}, {"VideoConf", 1}} {
		vm, err := newGuest(server, i+1, 8, g.pa)
		if err != nil {
			log.Fatal(err)
		}
		guests = append(guests, guest{g.name, vm})
	}

	cacheSpec, err := coach.WorkloadByName("Cache")
	if err != nil {
		log.Fatal(err)
	}
	cacheSpec.VMSizeGB, cacheSpec.WSSGB, cacheSpec.PhaseAmpGB, cacheSpec.ChurnGBs = 8, 4, 0, 0
	cacheRun, err := coach.NewWorkloadRunner(cacheSpec, guests[0].vm, coach.DefaultMemoryConfig())
	if err != nil {
		log.Fatal(err)
	}
	base := cacheRun.BaselineOpNs()

	fmt.Println("t(s)  pool-free(GB)  cache-P99-slowdown  event")
	for t := 0; t < 330; t++ {
		now := float64(t)
		guests[0].vm.SetWSS(cacheKVWSS(now))
		guests[1].vm.SetWSS(cacheKVWSS(now))
		guests[2].vm.SetWSS(videoConfWSS(now))

		stats, err := server.Tick(1)
		if err != nil {
			log.Fatal(err)
		}
		if t%30 == 0 || t == 135 || t == 255 {
			event := ""
			switch t {
			case 135:
				event = "<- first contention (VideoConf grows)"
			case 255:
				event = "<- second contention (no cold memory left)"
			}
			fmt.Printf("%4d  %13.2f  %18.2f  %s\n",
				t, server.Server.PoolFree(),
				cacheRun.TickSlowdown(stats[1], base), event)
		}
	}
	fmt.Printf("\nagent: %d contentions detected, %d trims, %d pool extensions\n",
		server.Agent.ContentionsDetected, server.Agent.TrimsStarted, server.Agent.ExtendsStarted)
}

// videoConfWSS drives the offender's working set: warmup bump, then two
// growth ramps at t=135 (trimmable) and t=255 (beyond all cold memory).
func videoConfWSS(t float64) float64 {
	switch {
	case t < 5:
		return 2.5
	case t < 25:
		return 3.5
	case t < 135:
		return 3
	case t < 165:
		return 3 + 2.5*(t-135)/30
	case t < 255:
		return 5.5
	case t < 285:
		return 5.5 + 2*(t-255)/30
	default:
		return 7.5
	}
}

// cacheKVWSS drives the colocated latency-sensitive VMs: steady 4GB with a
// warmup overshoot that leaves 1GB of trimmable cold memory each.
func cacheKVWSS(t float64) float64 {
	switch {
	case t < 5:
		return 3.5
	case t < 30:
		return 4
	case t < 60:
		return 5
	default:
		return 4
	}
}

func newGuest(server *coach.Server, id int, sizeGB, paGB float64) (*coach.VMMemory, error) {
	vm, err := coach.NewVMMemory(id, sizeGB, paGB)
	if err != nil {
		return nil, err
	}
	return vm, server.Server.AddVM(vm)
}
