// Prediction: train Coach's long-term random-forest predictor on the
// first week of a trace and inspect its per-time-window predictions for a
// second-week VM against what that VM actually did — the workflow behind
// the paper's Fig. 19.
package main

import (
	"fmt"
	"log"

	coach "github.com/coach-oss/coach"
)

func main() {
	cfg := coach.DefaultTraceConfig()
	cfg.VMs = 800
	cfg.Subscriptions = 60
	tr, err := coach.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fleet := coach.NewFleet(coach.DefaultClusters(2))
	platform, err := coach.NewPlatform(fleet, coach.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	trainUpTo := tr.Horizon / 2
	if err := platform.Train(tr, trainUpTo); err != nil {
		log.Fatal(err)
	}

	// Find a long-running second-week VM the model can predict.
	var target *coach.VM
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start >= trainUpTo && vm.LongRunning() {
			if platform.Model().HistoryCount(vm.Subscription) >= 3 {
				target = vm
				break
			}
		}
	}
	if target == nil {
		log.Fatal("no predictable second-week VM found")
	}

	cvm, err := platform.Request(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM %d: %v, subscription %d (%d prior VMs)\n",
		target.ID, target.Alloc, target.Subscription,
		platform.Model().HistoryCount(target.Subscription))
	fmt.Printf("guaranteed: %v\n", cvm.Guaranteed)
	fmt.Printf("savings before multiplexing: %v\n\n", cvm.OversubSavings())

	w := cvm.Pred.Windows
	fmt.Printf("memory, %d windows of %.0fh:\n", w.PerDay, w.Hours())
	fmt.Println("window  predicted-P95  predicted-max  actual-max")
	actual := target.Util[coach.Memory].LifetimeWindowMax(w)
	for t := 0; t < w.PerDay; t++ {
		fmt.Printf("%3d     %12.0f%%  %12.0f%%  %9.0f%%\n", t,
			100*cvm.Pred.Pct[coach.Memory][t],
			100*cvm.Pred.Max[coach.Memory][t],
			100*actual[t])
	}

	// Aggregate prediction quality over all predictable second-week VMs:
	// does the guaranteed (P95-based) portion cover the VM's actual P95
	// utilization (the Fig. 19 criterion)?
	var covered, under, n int
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < trainUpTo || !vm.LongRunning() {
			continue
		}
		c, err := platform.Request(vm)
		if err != nil {
			log.Fatal(err)
		}
		if c.OversubSavings().IsZero() {
			continue
		}
		n++
		actualPct := vm.Util[coach.Memory].WindowPercentile(c.Pred.Windows, 95)
		var actGuar float64
		for _, v := range actualPct {
			if v > actGuar {
				actGuar = v
			}
		}
		if c.Pred.PADemandFrac(coach.Memory) >= actGuar {
			covered++
		} else {
			under++
		}
	}
	fmt.Printf("\nsecond-week VMs with predictions: %d (guaranteed portion covers actual P95 for %d, under-allocates %d)\n",
		n, covered, under)
}
