// Quickstart: generate a synthetic trace, train Coach's prediction model,
// schedule arriving VMs onto a fleet with time-window oversubscription,
// and report how much extra capacity Coach unlocked.
package main

import (
	"fmt"
	"log"

	coach "github.com/coach-oss/coach"
)

func main() {
	// 1. Generate an Azure-like trace: two weeks, ten clusters.
	cfg := coach.DefaultTraceConfig()
	cfg.VMs = 800
	cfg.Subscriptions = 60
	tr, err := coach.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d VMs over %d days, %d long-running\n",
		len(tr.VMs), tr.Days(), len(tr.LongRunning()))

	// 2. Build a small fleet and the Coach control plane.
	fleet := coach.NewFleet(coach.DefaultClusters(2))
	platform, err := coach.NewPlatform(fleet, coach.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the long-term predictor on the first week.
	trainUpTo := tr.Horizon / 2
	if err := platform.Train(tr, trainUpTo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor: trained on %d rows\n", platform.Model().TrainRows())

	// 4. Schedule second-week arrivals as CoachVMs.
	var placed, rejected, oversubscribed int
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= trainUpTo {
			continue
		}
		cvm, err := platform.Request(vm)
		if err != nil {
			log.Fatal(err)
		}
		if !cvm.OversubSavings().IsZero() {
			oversubscribed++
		}
		if _, ok := platform.Place(cvm); ok {
			placed++
		} else {
			rejected++
		}
	}
	fmt.Printf("scheduling: placed %d VMs (%d oversubscribed), rejected %d\n",
		placed, oversubscribed, rejected)
	fmt.Printf("fleet: %d/%d servers in use\n",
		platform.Scheduler().UsedServers(), len(fleet.Servers))

	// 5. How much memory did multiplexing the oversubscribed portions
	// save across the fleet?
	var multiplexSavedGB float64
	for _, st := range platform.Scheduler().Servers() {
		multiplexSavedGB += st.Pool.MultiplexSavings()[coach.Memory]
	}
	fmt.Printf("multiplexing: %.1f GB of memory saved by pooling VA demands\n",
		multiplexSavedGB)
}
