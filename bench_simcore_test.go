// BenchmarkSimCore: the replay-core grid behind BENCH_simcore.json. One
// benchmark op is one full evaluation-period replay (sim.Run) of a
// scenario preset under the None policy — no model training, no data
// plane — so the timed region is exactly the shard loop the event-driven
// core rebuilds (docs/DESIGN.md §12). The grid crosses preset (the
// change-sparse sparse-churn stressor vs. the dense capacity baseline) ×
// population/horizon × engine (dense reference vs. event core) × Workers
// {1,2,8}. Each sub-benchmark also reports visits/op — the number of
// placed-VM records the shard loop touched per replay, counted via
// sim.Config.VisitCounter — as the machine-independent work metric: on a
// single-CPU host the wall-clock ratio understates the win, while
// visits/op is exact and deterministic. cmd/coach-benchdiff gates CI on
// these numbers against the committed BENCH_simcore.json.
package coach

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/sim"
	"github.com/coach-oss/coach/internal/trace"
)

// simCoreSize is one population/horizon point of the grid. serversPer
// sizes the ten-cluster fleet so the None policy places the bulk of the
// arrivals (rejections would shrink both engines' work equally, but a
// mostly-placed fleet is the regime the north star cares about).
type simCoreSize struct {
	vms, subs, days, serversPer int
}

// simCoreTraces caches generated traces across sub-benchmarks (they run
// sequentially) so -bench filters only pay for the grid points they hit.
var simCoreTraces = map[string]*trace.Trace{}

func simCoreTrace(b *testing.B, preset string, sz simCoreSize) *trace.Trace {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", preset, sz.vms, sz.days)
	if tr, ok := simCoreTraces[key]; ok {
		return tr
	}
	sp, err := scenario.Preset(preset)
	if err != nil {
		b.Fatal(err)
	}
	sp = sp.Scaled(sz.vms, sz.subs)
	sp.Days = sz.days
	tr, err := trace.GenerateScenario(sp)
	if err != nil {
		b.Fatal(err)
	}
	simCoreTraces[key] = tr
	return tr
}

func runSimCore(b *testing.B, preset string, sz simCoreSize, engine sim.EngineKind, workers int) {
	tr := simCoreTrace(b, preset, sz)
	fleet := NewFleet(DefaultClusters(sz.serversPer))
	cfg := SimConfigForPolicy(PolicyNone)
	cfg.TrainUpTo = tr.Horizon / 2
	cfg.Workers = workers
	cfg.Engine = engine
	var visits int64
	cfg.VisitCounter = &visits
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(tr, fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Placed == 0 {
			b.Fatal("nothing placed")
		}
	}
	b.ReportMetric(float64(atomic.LoadInt64(&visits))/float64(b.N), "visits/op")
}

// BenchmarkSimCore is the committed grid: two presets × two sizes ×
// both engines × Workers {1,2,8}. Record it with
//
//	go test -run=NONE -bench=BenchmarkSimCore -benchtime=3x
func BenchmarkSimCore(b *testing.B) {
	sizes := []simCoreSize{
		{vms: 1000, subs: 60, days: 7, serversPer: 110},
		{vms: 4000, subs: 120, days: 14, serversPer: 420},
	}
	for _, preset := range []string{"sparse-churn", "capacity"} {
		for _, sz := range sizes {
			for _, engine := range []sim.EngineKind{sim.EngineDense, sim.EngineEvent} {
				for _, workers := range []int{1, 2, 8} {
					name := fmt.Sprintf("%s/vms=%d/days=%d/engine=%s/workers=%d",
						preset, sz.vms, sz.days, engine, workers)
					preset, sz, engine, workers := preset, sz, engine, workers
					b.Run(name, func(b *testing.B) {
						runSimCore(b, preset, sz, engine, workers)
					})
				}
			}
		}
	}
}

// BenchmarkSimCoreFull is the acceptance-scale run: sparse-churn at
// 100k+ VMs over the full two-week horizon, where the ISSUE 7 criterion
// (≥5× fewer VM-visits for the event core) is measured. It is opt-in via
// COACH_BENCH_FULL=1: the trace alone is gigabytes and one dense replay
// op runs for seconds, which is too heavy for the CI bench smoke.
func BenchmarkSimCoreFull(b *testing.B) {
	if os.Getenv("COACH_BENCH_FULL") == "" {
		b.Skip("set COACH_BENCH_FULL=1 to run the 100k-VM acceptance grid")
	}
	sz := simCoreSize{vms: 100_000, subs: 1500, days: 14, serversPer: 11000}
	for _, engine := range []sim.EngineKind{sim.EngineDense, sim.EngineEvent} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("sparse-churn/vms=%d/days=%d/engine=%s/workers=%d",
				sz.vms, sz.days, engine, workers)
			engine, workers := engine, workers
			b.Run(name, func(b *testing.B) {
				runSimCore(b, "sparse-churn", sz, engine, workers)
			})
		}
	}
}
